"""The prediction service and daemon: bit-identity, single-flight, shutdown.

Three layers under test:

* :class:`PredictionService` in-process -- the differential contract (the
  service path answers exactly what :class:`~repro.core.predictor.Predictor`
  answers in-process), request normalisation (equivalent spellings share a
  cache entry), partial-overlap profile reuse, and single-flight dedup.
* :class:`PredictionDaemon` over its unix socket -- every verb, error
  reporting with the original exception class, warm answers bit-identical
  across the wire, concurrent duplicate requests computing once, and the
  ``shutdown`` verb leaving no socket file behind.
* The ``repro-predict serve`` process over the **process backend** --
  SIGTERM triggers the ordered drain (stop accepting, finish in-flight,
  close pools) and leaves ``/dev/shm`` clean, mirroring the engine
  lifecycle tests.
"""

from __future__ import annotations

import concurrent.futures
import os
import signal
import socket as socket_module
import struct
import subprocess
import sys
import threading

import pytest

from test_parallel_backend import shm_segments

from repro.algorithms.registry import algorithm_by_name
from repro.bsp.engine import BSPEngine
from repro.experiments.harness import ExperimentContext
from repro.service.cache import InMemoryLRUCache
from repro.service.canonical import PredictRequest
from repro.service.client import PredictionClient, RemoteError
from repro.service.daemon import PredictionDaemon, PredictionService
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)

SCALE = 0.05
WORKERS = 4
SEED = 42

LJ_PAGERANK = dict(dataset="livejournal", algorithm="pagerank", sampling_ratio=0.1)


def make_service(**overrides) -> PredictionService:
    kwargs = dict(dataset_scale=SCALE, num_workers=WORKERS, seed=SEED)
    kwargs.update(overrides)
    return PredictionService(**kwargs)


def strip_cache(wire: dict) -> dict:
    return {k: v for k, v in wire.items() if k != "cache"}


# ------------------------------------------------------------------ protocol
def test_frame_roundtrip_over_socketpair():
    a, b = socket_module.socketpair()
    payload = {"verb": "predict", "params": {"ratio": 0.1, "nested": [1, 2.5, None]}}
    write_frame(a, payload)
    assert read_frame(b) == payload
    a.close()
    assert read_frame(b) is None  # clean EOF at a frame edge
    b.close()


def test_frame_rejects_oversized_length():
    a, b = socket_module.socketpair()
    a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="exceeds"):
        read_frame(b)
    a.close()
    b.close()


def test_encode_frame_rejects_unserialisable():
    with pytest.raises(ProtocolError):
        encode_frame({"bad": object()})


# ------------------------------------------------------- in-process service
@pytest.fixture(scope="module")
def service():
    svc = make_service()
    yield svc
    svc.close()


def test_service_warm_prediction_is_bit_identical(service):
    cold = service.predict(PredictRequest(**LJ_PAGERANK))
    warm = service.predict(PredictRequest(**LJ_PAGERANK))
    assert cold["cache"] == "miss" and warm["cache"] == "hit"
    assert strip_cache(cold) == strip_cache(warm)


def test_service_matches_in_process_predictor(service):
    """The differential contract: the service path answers exactly what the
    in-process predictor answers when both share scale/seed/workers."""
    wire = service.predict(PredictRequest(**LJ_PAGERANK))
    with ExperimentContext(
        dataset_scale=SCALE, num_workers=WORKERS, seed=SEED
    ) as ctx:
        graph = ctx.load("livejournal")
        prediction = ctx.predictor(algorithm_by_name("pagerank")).predict(
            graph, None, sampling_ratio=0.1, dataset_name="livejournal"
        )
    assert wire["predicted_superstep_runtime"] == prediction.predicted_superstep_runtime
    assert wire["predicted_iteration_runtimes"] == [
        float(v) for v in prediction.predicted_iteration_runtimes
    ]
    assert wire["predicted_iterations"] == prediction.predicted_iterations
    assert wire["r_squared"] == prediction.cost_model.r_squared
    assert wire["vertex_scaling_factor"] == prediction.vertex_scaling_factor
    assert wire["edge_scaling_factor"] == prediction.edge_scaling_factor


def test_equivalent_spellings_share_one_cache_entry(service):
    """Normalisation resolves aliases and defaults before hashing: ``pr``
    with explicit default budget/ratios is the same question as the
    defaulted ``pagerank`` request (already cached by the tests above)."""
    spelled_out = service.predict(
        PredictRequest(
            dataset="livejournal",
            algorithm="pr",  # registry alias
            sampling_ratio=0.1,
            training_ratios=(0.05, 0.1, 0.15, 0.2),  # the paper's defaults
            budget=service.max_supersteps,  # the service default
        )
    )
    assert spelled_out["cache"] == "hit"


def test_overlapping_sweeps_reuse_profile_cells(service):
    """A new prediction ratio misses the prediction cache but reuses every
    training-ratio profile already computed -- only missing cells execute."""
    before = service.profile_cache.stats()
    overlap = service.predict(
        PredictRequest(dataset="livejournal", algorithm="pagerank", sampling_ratio=0.15)
    )
    after = service.profile_cache.stats()
    assert overlap["cache"] == "miss"
    # 0.15 is one of the training ratios: the sweep {0.05,0.1,0.15,0.2} is
    # fully cached, so zero new sample runs execute.
    assert after["hits"] - before["hits"] == 4
    assert after["puts"] == before["puts"]


def test_budget_is_part_of_the_question(service):
    """A tighter superstep budget can truncate convergence: never serve a
    budget-200 answer to a budget-5 question."""
    tight = service.predict(
        PredictRequest(dataset="livejournal", algorithm="pagerank", budget=5)
    )
    assert tight["cache"] == "miss"
    full = service.predict(PredictRequest(**LJ_PAGERANK))
    assert tight["predicted_iterations"] != full["predicted_iterations"]


def test_sample_run_verb_and_cache(service):
    request = PredictRequest(dataset="wikipedia", algorithm="cc", sampling_ratio=0.1)
    cold = service.sample_run(request)
    warm = service.sample_run(request)
    assert cold["cache"] == "miss" and warm["cache"] == "hit"
    assert strip_cache(cold) == strip_cache(warm)
    assert cold["num_iterations"] >= 1
    assert cold["sample_vertices"] > 0


def test_unknown_names_raise_configuration_errors(service):
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        service.predict(PredictRequest(dataset="livejournal", algorithm="nope"))
    with pytest.raises(ConfigurationError):
        service.predict(
            PredictRequest(
                dataset="livejournal", algorithm="pagerank",
                config={"values": {"bogus_field": 1}},
            )
        )
    with pytest.raises(ConfigurationError):
        service.predict(
            PredictRequest(
                dataset="livejournal", algorithm="pagerank",
                cluster={"bogus_knob": 2},
            )
        )


def test_single_flight_coalesces_concurrent_duplicates():
    """N concurrent identical requests compute once: one miss, the waiters
    observe the winner's answer (coalesced) or the warm cache (hit)."""
    with make_service() as svc:
        request = PredictRequest(dataset="wikipedia", algorithm="pagerank")
        with concurrent.futures.ThreadPoolExecutor(6) as pool:
            results = [f.result() for f in [pool.submit(svc.predict, request) for _ in range(6)]]
        kinds = sorted(r["cache"] for r in results)
        assert kinds.count("miss") == 1
        assert svc.counters()["service.predict.computed"] == 1
        reference = strip_cache(results[0])
        assert all(strip_cache(r) == reference for r in results)


def test_clear_caches_and_status(service):
    status = service.status()
    assert status["dataset_scale"] == SCALE
    assert status["seed"] == SEED
    cleared = service.clear_caches()
    assert set(cleared) == {"predictions", "profiles"}
    assert service.predict(PredictRequest(**LJ_PAGERANK))["cache"] == "miss"


def test_sqlite_cache_survives_service_restart(tmp_path):
    # Regression: an *empty* CacheBackend is falsy (it has __len__), so a
    # `prediction_cache or InMemoryLRUCache()` default silently swapped a
    # fresh sqlite cache for a memory one.  The injected backend must be
    # the one the service actually uses, and a second service over the
    # same file must answer warm, bit-identically.
    from repro.service.cache import SqliteCache

    db = str(tmp_path / "predictions.sqlite")

    svc = make_service(
        prediction_cache=SqliteCache(db),
        profile_cache=SqliteCache(db, table="profiles"),
    )
    assert svc.prediction_cache.kind == "sqlite"
    assert svc.profile_cache.kind == "sqlite"
    cold = svc.predict(PredictRequest(**LJ_PAGERANK))
    assert cold["cache"] == "miss"
    svc.close()

    svc2 = make_service(
        prediction_cache=SqliteCache(db),
        profile_cache=SqliteCache(db, table="profiles"),
    )
    warm = svc2.predict(PredictRequest(**LJ_PAGERANK))
    assert warm["cache"] == "hit"
    assert strip_cache(warm) == strip_cache(cold)
    svc2.close()


# ------------------------------------------------------------------- daemon
@pytest.fixture()
def daemon_env(tmp_path):
    sock = str(tmp_path / "svc.sock")
    svc = make_service()
    daemon = PredictionDaemon(svc, socket_path=sock, max_workers=4)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    client = PredictionClient(sock)
    client.wait_until_ready(timeout=15.0)
    yield svc, daemon, client, sock
    try:
        client.shutdown()
    except (OSError, ProtocolError, RemoteError):
        daemon.request_shutdown()
    client.close()
    thread.join(timeout=30)
    assert not thread.is_alive(), "daemon thread failed to stop"


def test_daemon_verbs_and_wire_bit_identity(daemon_env):
    svc, daemon, client, sock = daemon_env
    assert client.ping() == "pong"

    cold = client.predict(**LJ_PAGERANK)
    warm = client.predict(**LJ_PAGERANK)
    assert cold["cache"] == "miss" and warm["cache"] == "hit"
    assert strip_cache(cold) == strip_cache(warm)

    status = client.status()
    assert status["socket"] == sock
    assert status["requests_served"] >= 3
    assert status["in_flight"] == 0

    stats = client.stats()
    assert stats["counters"]["service.cache.hit"] >= 1
    assert stats["caches"]["prediction"]["kind"] == "memory"

    cleared = client.clear_cache()
    assert set(cleared) == {"predictions", "profiles"}
    assert client.predict(**LJ_PAGERANK)["cache"] == "miss"


def test_daemon_wire_matches_in_process_service(daemon_env):
    """Socket transport is lossless: the JSON frame the client decodes is
    ``==`` the dict the service computed (floats survive bit for bit)."""
    svc, daemon, client, sock = daemon_env
    over_wire = client.predict(**LJ_PAGERANK)
    in_process = svc.predict(PredictRequest(**LJ_PAGERANK))
    assert strip_cache(over_wire) == strip_cache(in_process)


def test_daemon_error_reporting(daemon_env):
    svc, daemon, client, sock = daemon_env
    with pytest.raises(RemoteError) as excinfo:
        client.predict(dataset="no-such-dataset", algorithm="pagerank")
    assert excinfo.value.kind == "ConfigurationError"

    with pytest.raises(RemoteError) as excinfo:
        client.call("predict", {"dataset": "livejournal"})  # missing algorithm
    assert excinfo.value.kind == "ValueError"

    with pytest.raises(RemoteError) as excinfo:
        client.call("frobnicate")
    assert excinfo.value.kind == "ProtocolError"

    # The connection survives error responses.
    assert client.ping() == "pong"


def test_daemon_concurrent_clients_single_flight(daemon_env):
    svc, daemon, client, sock = daemon_env

    def ask():
        c = PredictionClient(sock)
        try:
            return c.predict(dataset="wikipedia", algorithm="pagerank")["cache"]
        finally:
            c.close()

    with concurrent.futures.ThreadPoolExecutor(6) as pool:
        kinds = sorted(f.result() for f in [pool.submit(ask) for _ in range(6)])
    assert kinds.count("miss") == 1
    assert svc.counters()["service.predict.computed"] == 1


def test_daemon_shutdown_verb_removes_socket(tmp_path):
    sock = str(tmp_path / "s.sock")
    daemon = PredictionDaemon(make_service(), socket_path=sock)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    client = PredictionClient(sock)
    client.wait_until_ready(timeout=15.0)
    assert client.shutdown() == "shutting down"
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert not os.path.exists(sock)


# ------------------------------------------------------- process lifecycle
def test_sigterm_drains_and_leaves_no_shm(tmp_path):
    """A served daemon on the process backend: SIGTERM runs the ordered
    shutdown (drain in-flight, close pools, unlink socket) and leaves no
    shared-memory segment behind."""
    before = shm_segments()
    sock = str(tmp_path / "daemon.sock")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(p for p in (src, env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--socket", sock, "--scale", str(SCALE), "--workers", str(WORKERS),
            "--seed", str(SEED), "--backend", "process", "--processes", "2",
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        client = PredictionClient(sock)
        client.wait_until_ready(timeout=60.0)
        result = client.predict(
            dataset="livejournal", algorithm="pagerank", sampling_ratio=0.05
        )
        assert result["cache"] == "miss"
        client.close()
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "daemon stopped" in out
    assert not os.path.exists(sock), "socket file survived shutdown"
    if before is not None:
        leaked = shm_segments() - before
        assert not leaked, f"stale shared-memory segments after SIGTERM: {leaked}"


def test_release_pools_closes_every_pool_on_error():
    """Exception-safe teardown: a pool whose close() raises must not keep
    the remaining pools (and their /dev/shm arenas) alive."""

    class GoodPool:
        def __init__(self):
            self.closed = False

        def close(self):
            self.closed = True

    class BadPool(GoodPool):
        def close(self):
            super().close()
            raise RuntimeError("pool teardown boom")

    good_a, bad, good_b = GoodPool(), BadPool(), GoodPool()
    pools = {(2, "spawn"): good_a, (3, "spawn"): bad, (4, "spawn"): good_b}
    with pytest.raises(RuntimeError, match="pool teardown boom"):
        BSPEngine.release_pools(pools)
    assert good_a.closed and bad.closed and good_b.closed
    assert not pools, "pool map must be cleared even on error"


def test_borrowing_engine_does_not_close_shared_pools():
    """An engine handed a shared pool map borrows it: close_pools() must
    leave the pools alone (the owning service closes them exactly once)."""
    shared = {}
    engine = BSPEngine(shared_pools=shared)

    class Pool:
        alive = True
        closed = False

        def close(self):
            self.closed = True

    pool = Pool()
    shared[(2, "spawn")] = pool
    engine.close_pools()  # no-op: the service owns the map
    assert (2, "spawn") in shared and not pool.closed
    BSPEngine.release_pools(shared)  # the owner's close: really tears down
    assert pool.closed and not shared
