"""Correctness tests for PageRank and connected components on the engine."""

import numpy as np
import pytest

from repro.algorithms.connected_components import (
    ConnectedComponents,
    ConnectedComponentsConfig,
    extract_components,
)
from repro.algorithms.pagerank import PageRank, PageRankConfig, extract_ranks
from repro.bsp.engine import EngineConfig
from repro.exceptions import ConfigurationError
from repro.graph import generators
from repro.graph.digraph import DiGraph


def reference_pagerank(graph: DiGraph, damping: float, iterations: int) -> dict:
    """Dense power-iteration PageRank used as ground truth (no dangling fix,
    matching the vertex-centric implementation)."""
    vertices = list(graph.vertices())
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    ranks = np.full(n, 1.0 / n)
    out_degree = np.array([graph.out_degree(v) for v in vertices], dtype=float)
    for _ in range(iterations):
        incoming = np.zeros(n)
        for source, target, _ in graph.edges():
            incoming[index[target]] += ranks[index[source]] / out_degree[index[source]]
        ranks = (1 - damping) / n + damping * incoming
    return {v: ranks[index[v]] for v in vertices}


class TestPageRankCorrectness:
    def test_matches_reference_implementation(self, engine, tiny_graph):
        config = PageRankConfig(damping=0.85, tolerance=1e-12, max_iterations=20)
        engine_config = EngineConfig(num_workers=2, max_supersteps=6, collect_vertex_values=True)
        result = engine.run(tiny_graph, PageRank(), config, engine_config)
        # After k supersteps the engine has applied k-1 rank updates.
        reference = reference_pagerank(tiny_graph, 0.85, result.num_iterations - 1)
        ranks = extract_ranks(result.vertex_values)
        for vertex, expected in reference.items():
            assert ranks[vertex] == pytest.approx(expected, rel=1e-9)

    def test_ranks_sum_close_to_one(self, engine, small_scale_free_graph):
        config = PageRankConfig(tolerance=1e-8)
        engine_config = EngineConfig(num_workers=4, collect_vertex_values=True)
        result = engine.run(small_scale_free_graph, PageRank(), config, engine_config)
        total = sum(result.vertex_values.values())
        # Rank mass can only leak through dangling vertices.
        assert 0.5 < total <= 1.0 + 1e-9

    def test_converges_with_looser_threshold_in_fewer_iterations(self, engine, small_scale_free_graph, engine_config):
        loose = engine.run(
            small_scale_free_graph, PageRank(),
            PageRankConfig.for_tolerance_level(0.01, small_scale_free_graph.num_vertices),
            engine_config,
        )
        tight = engine.run(
            small_scale_free_graph, PageRank(),
            PageRankConfig.for_tolerance_level(0.001, small_scale_free_graph.num_vertices),
            engine_config,
        )
        assert loose.converged and tight.converged
        assert loose.num_iterations <= tight.num_iterations

    def test_convergence_history_decreases(self, engine, small_scale_free_graph, engine_config):
        result = engine.run(
            small_scale_free_graph, PageRank(), PageRankConfig(tolerance=1e-7), engine_config
        )
        history = result.convergence_history
        assert len(history) >= 2
        assert history[-1] < history[0]
        assert history[-1] < 1e-7

    def test_constant_per_iteration_features(self, engine, small_scale_free_graph, engine_config):
        # PageRank is the paper's category (i): every iteration sends the same
        # number of messages (one per edge) and activates every vertex.
        result = engine.run(
            small_scale_free_graph, PageRank(), PageRankConfig(tolerance=1e-9), engine_config
        )
        message_counts = {p.total_messages for p in result.iterations[:-1]}
        assert len(message_counts) == 1
        assert result.iterations[0].active_vertices == small_scale_free_graph.num_vertices

    def test_config_validation(self):
        algorithm = PageRank()
        with pytest.raises(ConfigurationError):
            algorithm.validate_config(PageRankConfig(damping=1.5))
        with pytest.raises(ConfigurationError):
            algorithm.validate_config(PageRankConfig(tolerance=0))
        with pytest.raises(ConfigurationError):
            PageRankConfig.for_tolerance_level(0, 100)

    def test_for_tolerance_level_scales_with_vertices(self):
        config = PageRankConfig.for_tolerance_level(0.01, 1000)
        assert config.tolerance == pytest.approx(1e-5)

    def test_extract_ranks_requires_values(self):
        with pytest.raises(ConfigurationError):
            extract_ranks(None)

    def test_message_size_constant(self):
        assert PageRank().message_size(0.123) == 8


class TestConnectedComponents:
    def test_single_component_graph(self, engine, engine_config):
        graph = generators.chain(12)
        config = EngineConfig(num_workers=3, collect_vertex_values=True)
        result = engine.run(graph, ConnectedComponents(), ConnectedComponentsConfig(), config)
        components = extract_components(result.vertex_values)
        assert len(components) == 1
        assert result.converged

    def test_two_components_identified(self, engine):
        graph = DiGraph()
        graph.add_edges([(0, 1), (1, 2), (2, 0)])
        graph.add_edges([(10, 11), (11, 12)])
        config = EngineConfig(num_workers=2, collect_vertex_values=True)
        result = engine.run(graph, ConnectedComponents(), ConnectedComponentsConfig(), config)
        components = extract_components(result.vertex_values)
        assert len(components) == 2
        labels = {frozenset(members) for members in components.values()}
        assert frozenset({0, 1, 2}) in labels
        assert frozenset({10, 11, 12}) in labels

    def test_component_label_is_minimum_id(self, engine):
        graph = DiGraph()
        graph.add_edges([(5, 9), (9, 7), (7, 5)])
        config = EngineConfig(num_workers=2, collect_vertex_values=True)
        result = engine.run(graph, ConnectedComponents(), ConnectedComponentsConfig(), config)
        assert set(result.vertex_values.values()) == {5}

    def test_activity_decreases_over_iterations(self, engine, engine_config, small_scale_free_graph):
        result = engine.run(
            small_scale_free_graph, ConnectedComponents(), ConnectedComponentsConfig(), engine_config
        )
        active = [p.active_vertices for p in result.iterations]
        assert active[-1] < active[0]

    def test_directed_edges_treated_as_undirected(self, engine):
        # 0 -> 1 and 2 -> 1: weakly connected even though not strongly.
        graph = DiGraph()
        graph.add_edges([(0, 1), (2, 1)])
        config = EngineConfig(num_workers=2, collect_vertex_values=True)
        result = engine.run(graph, ConnectedComponents(), ConnectedComponentsConfig(), config)
        assert len(extract_components(result.vertex_values)) == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ConnectedComponents().validate_config(ConnectedComponentsConfig(max_iterations=0))
