"""Fault injection + recovery: the process backend survives crashes losslessly.

The resilience contract (see ``docs/RESILIENCE.md``): with checkpointing
enabled, a process-backend run that loses a worker -- SIGKILLed, stopped past
the barrier deadline, or shipping a corrupted stream -- rewinds to the last
superstep checkpoint, heals the pool and replays to a :class:`RunResult`
**bit-identical** to an undisturbed run.  This module enforces that promise
with deterministic fault injection (:class:`repro.bsp.resilience.FaultPlan`)
across every registry algorithm, checkpoint intervals and recovery paths,
reusing the exact-equality assertions of the differential suite.

The undisturbed baseline is the *inline* backend, so equality here chains
through ``test_parallel_backend`` to the scalar engine: a recovered run
matches the single-process ground truth field by field -- vertex values,
convergence history, per-worker Table 1 counters and the seeded runtime
noise stream (checkpoints snapshot the RNG state).
"""

from __future__ import annotations

import pytest

from test_differential_engine import (
    ALGORITHM_NAMES,
    algorithm_settings,
    assert_profiles_identical,
)
from test_parallel_backend import shm_segments

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.registry import algorithm_by_name
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.resilience import FAULT_SEED_ENV, Fault, FaultPlan
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.exceptions import BSPError, ConfigurationError
from repro.graph import generators
from repro.obs.tracer import Tracer

PROCESSES = 2


@pytest.fixture(scope="module")
def process_engine():
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )
    yield engine
    engine.close_pools()


@pytest.fixture(scope="module")
def diff_graph():
    return generators.preferential_attachment(150, out_degree=4, seed=3).freeze()


def run_one(engine, graph, algorithm_name, **overrides):
    config, max_supersteps = algorithm_settings(algorithm_name)
    engine_config = EngineConfig(
        num_workers=5, max_supersteps=max_supersteps, runtime_seed=7,
        collect_vertex_values=True, **overrides,
    )
    return engine.run(graph, algorithm_by_name(algorithm_name), config, engine_config)


def undisturbed(engine, graph, algorithm_name):
    return run_one(engine, graph, algorithm_name)


# --------------------------------------------------------- crash recovery
@pytest.mark.parametrize("checkpoint_every", [1, 3])
@pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
def test_kill_recovery_bit_identical(
    process_engine, diff_graph, algorithm_name, checkpoint_every
):
    """Worker 1 SIGKILLed at superstep 2: the run recovers bit-identically.

    Every registry algorithm (all five plane kinds), both a per-superstep
    checkpoint cadence and a sparse one that forces a multi-superstep
    replay.  The acceptance scenario of the resilience subsystem.
    """
    baseline = undisturbed(process_engine, diff_graph, algorithm_name)
    recovered = run_one(
        process_engine, diff_graph, algorithm_name,
        backend="process", processes=PROCESSES,
        checkpoint_every=checkpoint_every,
        fault_plan=FaultPlan.parse(["kill:1:2"]),
    )
    assert_profiles_identical(baseline, recovered)
    assert recovered.recovery is not None
    assert recovered.recovery.rewinds == 1
    assert recovered.recovery.respawns == 1
    assert not recovered.recovery.degraded
    assert any("crash" in fault for fault in recovered.recovery.faults)


def test_checkpointing_alone_perturbs_nothing(process_engine, diff_graph):
    """No fault: a checkpointed run equals an uncheckpointed one, per backend."""
    baseline = undisturbed(process_engine, diff_graph, "pagerank")
    for backend in ("inline", "process"):
        checkpointed = run_one(
            process_engine, diff_graph, "pagerank",
            backend=backend, processes=PROCESSES, checkpoint_every=2,
        )
        assert_profiles_identical(baseline, checkpointed)
        assert checkpointed.recovery.rewinds == 0
        assert checkpointed.recovery.checkpoints > 0


def test_straggler_recovery_bit_identical(process_engine, diff_graph):
    """A SIGSTOPped worker misses the deadline, is shot and replaced."""
    baseline = undisturbed(process_engine, diff_graph, "pagerank")
    recovered = run_one(
        process_engine, diff_graph, "pagerank",
        backend="process", processes=PROCESSES,
        checkpoint_every=3, barrier_timeout_s=2.0,
        fault_plan=FaultPlan.parse(["stop:0:2"]),
    )
    assert_profiles_identical(baseline, recovered)
    assert recovered.recovery.rewinds == 1
    assert any("straggler" in fault for fault in recovered.recovery.faults)


@pytest.mark.parametrize("algorithm_name", ["pagerank", "semi-clustering"])
def test_corrupt_stream_recovery_bit_identical(
    process_engine, diff_graph, algorithm_name
):
    """Stream-length corruption is caught owner-side and recovered from.

    ``pagerank`` corrupts the scalar span/gather length arrays,
    ``semi-clustering`` the ragged per-payload byte sizes -- both detectors
    in :mod:`repro.bsp.parallel.protocol`.
    """
    baseline = undisturbed(process_engine, diff_graph, algorithm_name)
    recovered = run_one(
        process_engine, diff_graph, algorithm_name,
        backend="process", processes=PROCESSES,
        checkpoint_every=1,
        fault_plan=FaultPlan.parse(["corrupt:1:3"]),
    )
    assert_profiles_identical(baseline, recovered)
    assert recovered.recovery.rewinds == 1
    assert recovered.recovery.respawns == 0  # nobody died
    assert any("corrupt" in fault for fault in recovered.recovery.faults)


def test_stall_within_deadline_is_benign(process_engine, diff_graph):
    """A delay that stays under the barrier deadline triggers nothing."""
    baseline = undisturbed(process_engine, diff_graph, "pagerank")
    result = run_one(
        process_engine, diff_graph, "pagerank",
        backend="process", processes=PROCESSES,
        checkpoint_every=1, barrier_timeout_s=30.0,
        fault_plan=FaultPlan.parse(["stall:1:2:0.05"]),
    )
    assert_profiles_identical(baseline, result)
    assert result.recovery.rewinds == 0


# ------------------------------------------------------- degraded execution
def test_exhausted_attempts_degrade_inline_bit_identical(
    process_engine, diff_graph
):
    """recovery_attempts=0: the pool is abandoned, the inline loop finishes
    the run from the checkpoint -- still bit-identical."""
    baseline = undisturbed(process_engine, diff_graph, "pagerank")
    degraded = run_one(
        process_engine, diff_graph, "pagerank",
        backend="process", processes=PROCESSES,
        checkpoint_every=1, recovery_attempts=0,
        fault_plan=FaultPlan.parse(["kill:1:2"]),
    )
    assert_profiles_identical(baseline, degraded)
    assert degraded.recovery.degraded
    assert degraded.recovery.rewinds == 1
    # The next process run transparently gets a fresh pool.
    after = run_one(
        process_engine, diff_graph, "pagerank",
        backend="process", processes=PROCESSES,
    )
    assert_profiles_identical(baseline, after)


# --------------------------------------------------------- unrecoverable
def test_crash_without_checkpointing_raises(process_engine, diff_graph):
    """No checkpoints -> no rewind target: the crash surfaces as before."""
    with pytest.raises(BSPError, match="died mid-run"):
        run_one(
            process_engine, diff_graph, "pagerank",
            backend="process", processes=PROCESSES,
            fault_plan=FaultPlan.parse(["kill:1:2"]),
        )


def test_poison_fault_is_unrecoverable(process_engine, diff_graph):
    """An algorithm exception would raise again on replay: no retry."""
    with pytest.raises(BSPError, match="poisoned at superstep 2"):
        run_one(
            process_engine, diff_graph, "pagerank",
            backend="process", processes=PROCESSES,
            checkpoint_every=1,
            fault_plan=FaultPlan.parse(["poison:1:2"]),
        )


# ------------------------------------------------------------ observability
def test_recovery_spans_and_counters_in_trace(process_engine, diff_graph):
    """Checkpoint / rewind / respawn events are visible in a --trace export."""
    tracer = Tracer()
    result = run_one(
        process_engine, diff_graph, "pagerank",
        backend="process", processes=PROCESSES,
        checkpoint_every=1, trace=tracer,
        fault_plan=FaultPlan.parse(["kill:1:2"]),
    )
    names = {span.name for span in tracer.spans}
    assert "recovery.checkpoint" in names
    assert "recovery.rewind" in names
    assert "recovery.respawn" in names
    assert tracer.counters["recovery.rewinds"] == 1
    assert tracer.counters["recovery.respawns"] == 1
    assert tracer.counters["recovery.checkpoints"] >= 1
    rewinds = [span for span in tracer.spans if span.name == "recovery.rewind"]
    assert rewinds[0].attrs["fault"] == "crash"
    assert result.recovery.rewinds == 1


def test_summary_reports_recovery(process_engine, diff_graph):
    result = run_one(
        process_engine, diff_graph, "pagerank",
        backend="process", processes=PROCESSES,
        checkpoint_every=1,
        fault_plan=FaultPlan.parse(["kill:1:2"]),
    )
    summary = result.summary()
    assert summary["recovery"]["rewinds"] == 1
    assert summary["recovery"]["respawns"] == 1
    assert summary["recovery"]["degraded"] is False
    assert summary["recovery"]["faults"]
    # An untouched run reports no recovery section at all.
    plain = undisturbed(process_engine, diff_graph, "pagerank")
    assert "recovery" not in plain.summary()
    assert plain.recovery is None


def test_recovered_runs_leave_no_shm_segments(process_engine, diff_graph):
    before = shm_segments()
    if before is None:  # pragma: no cover - non-Linux hosts
        pytest.skip("/dev/shm not available")
    run_one(
        process_engine, diff_graph, "pagerank",
        backend="process", processes=PROCESSES,
        checkpoint_every=1, fault_plan=FaultPlan.parse(["kill:1:2"]),
    )
    leaked = shm_segments() - before
    assert not leaked, f"stale shared-memory segments after recovery: {leaked}"


# ---------------------------------------------------------------- FaultPlan
def test_fault_plan_parse_roundtrip():
    plan = FaultPlan.parse(["kill:1:2", "stall:0:3:0.25"])
    assert plan
    assert plan.faults[0] == Fault(kind="kill", process=1, superstep=2)
    assert plan.faults[1].delay_s == 0.25
    assert plan.fault_for(1, 2).kind == "kill"
    assert plan.fault_for(1, 3) is None
    disarmed = plan.disarm_through(2)
    assert disarmed.fault_for(1, 2) is None
    assert disarmed.fault_for(0, 3) is not None


def test_fault_plan_parse_rejects_garbage():
    with pytest.raises(ConfigurationError):
        FaultPlan.parse(["explode:1:2"])
    with pytest.raises(ConfigurationError):
        FaultPlan.parse(["kill:1"])
    with pytest.raises(ConfigurationError):
        FaultPlan.parse(["kill:one:two"])


def test_fault_plan_wildcard_process_resolves_from_seed(monkeypatch):
    monkeypatch.setenv(FAULT_SEED_ENV, "1234")
    plan = FaultPlan.parse(["kill:?:2"])
    assert plan.faults[0].process is None
    resolved = plan.resolve(4)
    assert resolved.faults[0].process in range(4)
    # Deterministic under the pinned seed.
    assert resolved.faults[0].process == plan.resolve(4).faults[0].process


def test_kill_fault_via_engine_run_wildcard(process_engine, diff_graph, monkeypatch):
    """The CI chaos leg's shape: REPRO_FAULT_SEED picks the victim."""
    monkeypatch.setenv(FAULT_SEED_ENV, "99")
    baseline = undisturbed(process_engine, diff_graph, "pagerank")
    recovered = run_one(
        process_engine, diff_graph, "pagerank",
        backend="process", processes=PROCESSES,
        checkpoint_every=1, fault_plan=FaultPlan.parse(["kill:?:2"]),
    )
    assert_profiles_identical(baseline, recovered)
    assert recovered.recovery.rewinds == 1
