"""Unit tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.utils.stats import (
    coefficient_of_determination,
    cumulative_distribution,
    d_statistic,
    geometric_mean,
    mean_absolute_relative_error,
    percentile,
    relative_error,
    signed_relative_error,
)


class TestSignedRelativeError:
    def test_over_prediction_is_positive(self):
        assert signed_relative_error(12, 10) == pytest.approx(0.2)

    def test_under_prediction_is_negative(self):
        assert signed_relative_error(8, 10) == pytest.approx(-0.2)

    def test_exact_prediction_is_zero(self):
        assert signed_relative_error(10, 10) == 0.0

    def test_zero_actual_zero_predicted(self):
        assert signed_relative_error(0, 0) == 0.0

    def test_zero_actual_nonzero_predicted_is_infinite(self):
        assert signed_relative_error(1, 0) == float("inf")


class TestRelativeError:
    def test_absolute_value(self):
        assert relative_error(8, 10) == pytest.approx(0.2)
        assert relative_error(12, 10) == pytest.approx(0.2)

    def test_mean_absolute_relative_error(self):
        assert mean_absolute_relative_error([8, 12], [10, 10]) == pytest.approx(0.2)

    def test_mean_error_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            mean_absolute_relative_error([1, 2], [1])

    def test_mean_error_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_absolute_relative_error([], [])


class TestCoefficientOfDetermination:
    def test_perfect_fit(self):
        assert coefficient_of_determination([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_mean_prediction_gives_zero(self):
        actual = [1.0, 2.0, 3.0]
        predicted = [2.0, 2.0, 2.0]
        assert coefficient_of_determination(actual, predicted) == pytest.approx(0.0)

    def test_poor_fit_is_negative(self):
        assert coefficient_of_determination([1, 2, 3], [3, 2, 1]) < 0

    def test_constant_actual_perfect(self):
        assert coefficient_of_determination([2, 2, 2], [2, 2, 2]) == 1.0

    def test_constant_actual_imperfect(self):
        assert coefficient_of_determination([2, 2, 2], [2, 2, 3]) == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            coefficient_of_determination([1, 2], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            coefficient_of_determination([], [])


class TestDistributions:
    def test_cumulative_distribution_monotone(self):
        values, cdf = cumulative_distribution([3, 1, 2])
        assert list(values) == [1, 2, 3]
        assert list(cdf) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_d_statistic_identical_distributions(self):
        assert d_statistic([1, 2, 3, 4], [1, 2, 3, 4]) == pytest.approx(0.0)

    def test_d_statistic_disjoint_distributions(self):
        assert d_statistic([0, 0, 0], [10, 10, 10]) == pytest.approx(1.0)

    def test_d_statistic_bounded(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=100)
        b = rng.normal(loc=0.5, size=80)
        value = d_statistic(a, b)
        assert 0.0 <= value <= 1.0

    def test_d_statistic_rejects_empty(self):
        with pytest.raises(ValueError):
            d_statistic([], [1, 2])


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_percentile(self):
        assert percentile([1, 2, 3, 4, 5], 50) == pytest.approx(3.0)

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)
