"""Tests for the experiment harness and the per-figure entry points.

Everything runs at a very small dataset scale so that the whole evaluation
machinery (actual-run caching, threshold-derived iteration counts, the figure
sweeps and the table builders) is exercised quickly; the full-scale sweeps
live in ``benchmarks/``.
"""

import pytest

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.cluster.cost_profile import CostProfile
from repro.exceptions import ConfigurationError
from repro.experiments import figures
from repro.experiments.harness import (
    ExperimentContext,
    build_history,
    iterations_for_threshold,
    sweep_to_series,
)
from repro.experiments.reporting import render_error_sweep, render_series, render_table


@pytest.fixture(scope="module")
def ctx():
    """A small, deterministic experiment context shared by this module."""
    return ExperimentContext(
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
        dataset_scale=0.12,
        num_workers=4,
        seed=7,
        max_supersteps=120,
    )


class TestExperimentContext:
    def test_load_is_cached_per_dataset(self, ctx):
        assert ctx.load("wikipedia") is ctx.load("wikipedia")

    def test_actual_run_cached(self, ctx):
        graph = ctx.load("wikipedia")
        config = PageRankConfig.for_tolerance_level(0.01, graph.num_vertices)
        first = ctx.actual_run("wikipedia", PageRank(), config)
        second = ctx.actual_run("wikipedia", PageRank(), config)
        assert first is second

    def test_actual_run_collect_values_upgrades_cache(self, ctx):
        graph = ctx.load("wikipedia")
        config = PageRankConfig.for_tolerance_level(0.05, graph.num_vertices)
        without = ctx.actual_run("wikipedia", PageRank(), config)
        with_values = ctx.actual_run("wikipedia", PageRank(), config, collect_values=True)
        assert with_values.vertex_values is not None

    def test_pagerank_output_covers_all_vertices(self, ctx):
        ranks = ctx.pagerank_output("wikipedia")
        assert set(ranks) == set(ctx.load("wikipedia").vertices())

    def test_topk_config_carries_ranks(self, ctx):
        config = ctx.topk_config("wikipedia", k=3)
        assert config.k == 3
        assert config.ranks

    def test_sampler_and_predictor_wiring(self, ctx):
        assert ctx.sampler("RJ").name == "RJ"
        predictor = ctx.predictor(PageRank(), training_ratios=(0.1, 0.2))
        assert predictor.training_ratios == (0.1, 0.2)


class TestIterationsForThreshold:
    def test_matches_run_with_looser_threshold(self, ctx):
        graph = ctx.load("wikipedia")
        tight = PageRankConfig.for_tolerance_level(0.001, graph.num_vertices)
        loose = PageRankConfig.for_tolerance_level(0.01, graph.num_vertices)
        tight_run = ctx.actual_run("wikipedia", PageRank(), tight)
        loose_run = ctx.actual_run("wikipedia", PageRank(), loose)
        derived = iterations_for_threshold(tight_run, loose.tolerance)
        assert derived == loose_run.num_iterations

    def test_threshold_tighter_than_run_returns_full_count(self, ctx):
        graph = ctx.load("wikipedia")
        config = PageRankConfig.for_tolerance_level(0.01, graph.num_vertices)
        run = ctx.actual_run("wikipedia", PageRank(), config)
        assert iterations_for_threshold(run, 1e-12) == run.num_iterations

    def test_run_without_history_raises(self):
        from repro.bsp.result import RunResult

        empty = RunResult(
            algorithm="pagerank", graph_name="g", num_vertices=1, num_edges=1, num_workers=1
        )
        with pytest.raises(ConfigurationError):
            iterations_for_threshold(empty, 0.1)


class TestSweepHelpers:
    def test_sweep_to_series(self):
        ratios, series = sweep_to_series({"LJ": [(0.1, 0.2), (0.2, 0.1)], "UK": [(0.1, -0.1)]})
        assert ratios == [0.1, 0.2]
        assert series["LJ"] == [0.2, 0.1]

    def test_render_helpers_produce_text(self):
        table_text = render_table(["a"], [[1]], title="T")
        series_text = render_series("x", [1], {"s": [2]})
        sweep_text = render_error_sweep({"LJ": [(0.1, 0.25)]}, title="Sweep")
        assert "T" in table_text
        assert "s" in series_text
        assert "LJ" in sweep_text


class TestFigureEntryPoints:
    DATASETS = ("wikipedia", "uk-2002")
    RATIOS = (0.1, 0.2)

    def test_table2(self, ctx):
        result = figures.table2_datasets(ctx, datasets=self.DATASETS)
        assert len(result.rows) == 2
        assert "paper_nodes" in result.headers
        assert "Table 2" in result.render()

    def test_fig4(self, ctx):
        result = figures.fig4_pagerank_iterations(
            ctx, datasets=self.DATASETS, ratios=self.RATIOS, epsilons=(0.01, 0.001)
        )
        assert set(result) == {0.01, 0.001}
        sweep = result[0.001]
        assert set(sweep.sweep) == {"Wiki", "UK"}
        assert all(len(points) == len(self.RATIOS) for points in sweep.sweep.values())
        assert "Figure 4" in sweep.render()

    def test_fig5(self, ctx):
        result = figures.fig5_semiclustering_iterations(
            ctx, datasets=("wikipedia",), ratios=self.RATIOS, tolerances=(0.01, 0.001)
        )
        assert set(result) == {0.01, 0.001}
        assert "Wiki" in result[0.001].sweep

    def test_fig6(self, ctx):
        result = figures.fig6_topk_features(ctx, datasets=("wikipedia",), ratios=self.RATIOS)
        assert set(result) == {"iterations", "remote_bytes"}
        assert "Wiki" in result["remote_bytes"].sweep

    def test_fig7_and_history_variant(self, ctx):
        no_history = figures.fig7_semiclustering_runtime(
            ctx, datasets=("wikipedia", "uk-2002"), ratios=(0.1,), use_history=False
        )
        with_history = figures.fig7_semiclustering_runtime(
            ctx, datasets=("wikipedia", "uk-2002"), ratios=(0.1,), use_history=True
        )
        assert no_history.extras["used_history"] is False
        assert with_history.extras["used_history"] is True
        assert set(no_history.sweep) == {"Wiki", "UK"}
        assert set(no_history.extras["r_squared"]) == {"Wiki", "UK"}

    def test_fig8(self, ctx):
        result = figures.fig8_topk_runtime(
            ctx, datasets=("wikipedia",), ratios=(0.1,), use_history=False
        )
        assert "Wiki" in result.sweep
        assert result.extras["r_squared"]["Wiki"] <= 1.0

    def test_fig9(self, ctx):
        result = figures.fig9_sampling_sensitivity(
            ctx, dataset="wikipedia", ratios=(0.1,), samplers=("BRJ", "RJ")
        )
        assert set(result) == {"semi-clustering", "topk-ranking"}
        assert set(result["semi-clustering"].sweep) == {"BRJ", "RJ"}

    def test_upper_bounds(self, ctx):
        result = figures.upper_bound_comparison(ctx, datasets=("wikipedia",), epsilons=(0.01, 0.001))
        assert len(result.rows) == 2
        for row in result.rows:
            bound = row[1]
            actual = row[2]
            assert bound > actual  # the analytical bound is loose

    def test_table3(self, ctx):
        result = figures.table3_overhead(
            ctx,
            ratios=(0.1, 1.0),
            columns=(("pagerank", "wikipedia"), ("connected-components", "wikipedia")),
        )
        assert result.headers[0] == "SR"
        sample_row = result.rows[0]
        actual_row = result.rows[-1]
        # The sample run is cheaper than the actual run for every column.
        assert all(sample < actual for sample, actual in zip(sample_row[1:], actual_row[1:]))

    def test_ablation_transform(self, ctx):
        result = figures.ablation_transform_function(
            ctx, datasets=("wikipedia",), ratios=(0.1,), epsilon=0.001
        )
        assert set(result) == {"with-transform", "without-transform"}
        with_err = abs(result["with-transform"].sweep["Wiki"][0][1])
        without_err = abs(result["without-transform"].sweep["Wiki"][0][1])
        # Scaling the threshold must not be worse than ignoring it.
        assert with_err <= without_err + 1e-9

    def test_ablation_feature_selection(self, ctx):
        result = figures.ablation_feature_selection(
            ctx, dataset="wikipedia", ratios=(0.1, 0.2), prediction_ratio=0.1
        )
        assert len(result.rows) == 2
        assert {row[0] for row in result.rows} == {"forward-selection", "all-features"}

    def test_error_sweep_helpers(self, ctx):
        sweep = figures.ErrorSweep(title="t", x_label="x", sweep={"A": [(0.1, 0.5), (0.2, -0.2)]})
        ratios, series = sweep.series()
        assert ratios == [0.1, 0.2]
        assert sweep.max_abs_error() == pytest.approx(0.5)
        assert sweep.max_abs_error(at_ratio=0.2) == pytest.approx(0.2)
