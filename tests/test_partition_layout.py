"""Partition-native layout invariants.

The engine's partition-native execution rests on a handful of structural
guarantees of :class:`repro.graph.partition.Partitioning` and
:meth:`repro.graph.csr.CSRGraph.repartition`:

* the permutation round-trips (``perm[inverse_perm] == arange``);
* every vertex is owned by exactly one worker and the contiguous layout
  covers the vertex set exactly;
* repartitioning is idempotent (a partition-contiguous graph repartitioned
  with the same assignment comes back unchanged);
* hash partitioning depends only on vertex ids, so it is stable across
  ``freeze()`` / ``to_digraph()`` round trips;
* a repartitioned graph is *observationally identical* per vertex id
  (same out-edges, in the same order) -- the property that makes the batch
  planes bit-compatible with the scalar path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, GraphError
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.partition import (
    ChunkPartitioner,
    HashPartitioner,
    LDGPartitioner,
    Partitioning,
    RangePartitioner,
    edge_cut,
    partitioner_by_name,
)

PARTITIONER_CLASSES = [
    HashPartitioner, RangePartitioner, ChunkPartitioner, LDGPartitioner,
]


@pytest.fixture(scope="module")
def frozen_graph():
    return generators.preferential_attachment(240, out_degree=4, seed=9).freeze()


@pytest.mark.parametrize("partitioner_cls", PARTITIONER_CLASSES)
class TestLayoutInvariants:
    def test_permutation_round_trip(self, frozen_graph, partitioner_cls):
        partitioning = partitioner_cls().partition(frozen_graph, 4)
        n = frozen_graph.num_vertices
        assert (partitioning.perm[partitioning.inverse_perm] == np.arange(n)).all()
        assert (partitioning.inverse_perm[partitioning.perm] == np.arange(n)).all()

    def test_every_vertex_owned_exactly_once(self, frozen_graph, partitioner_cls):
        partitioning = partitioner_cls().partition(frozen_graph, 4)
        # The workers array covers every vertex with exactly one worker ...
        assert len(partitioning.workers) == frozen_graph.num_vertices
        assert set(np.unique(partitioning.workers)) <= set(range(4))
        # ... and the contiguous layout partitions [0, n) exactly.
        assert int(partitioning.offsets[0]) == 0
        assert int(partitioning.offsets[-1]) == frozen_graph.num_vertices
        assert (np.diff(partitioning.offsets) >= 0).all()
        assert sorted(partitioning.perm.tolist()) == list(range(frozen_graph.num_vertices))
        # Dict API agrees with the arrays.
        seen = set()
        for worker in range(4):
            vertices = partitioning.vertices_of(worker)
            assert not (seen & set(vertices))
            seen.update(vertices)
            for vertex in vertices:
                assert partitioning.worker_of(vertex) == worker
        assert len(seen) == frozen_graph.num_vertices

    def test_contiguous_assignment_matches_workers(self, frozen_graph, partitioner_cls):
        partitioning = partitioner_cls().partition(frozen_graph, 4)
        layout = partitioning.layout()
        contiguous = layout.assignment_contiguous()
        assert (contiguous == partitioning.workers[layout.perm]).all()
        assert (np.diff(contiguous) >= 0).all()  # grouped by worker
        # searchsorted lookup agrees with the expanded assignment.
        probes = np.arange(frozen_graph.num_vertices)
        assert (layout.worker_of_index(probes) == contiguous).all()

    def test_repartitioned_graph_observationally_identical(
        self, frozen_graph, partitioner_cls
    ):
        partitioning = partitioner_cls().partition(frozen_graph, 4)
        relabelled = frozen_graph.repartition(partitioning)
        assert relabelled.num_vertices == frozen_graph.num_vertices
        assert relabelled.num_edges == frozen_graph.num_edges
        assert sorted(map(str, relabelled.ids)) == sorted(map(str, frozen_graph.ids))
        for vertex in frozen_graph.vertices():
            assert relabelled.out_edges(vertex) == frozen_graph.out_edges(vertex)
        # Worker w owns exactly the contiguous index range of the layout.
        layout = relabelled.partition_layout
        for worker in range(4):
            owned = relabelled.ids[layout.offsets[worker] : layout.offsets[worker + 1]]
            assert owned == partitioning.vertices_of(worker)


class TestRepartitionIdempotence:
    def test_repartition_of_contiguous_graph_is_identity(self, frozen_graph):
        partitioning = HashPartitioner().partition(frozen_graph, 4)
        once = frozen_graph.repartition(partitioning)
        # Hash partitioning depends only on ids, so re-running the partitioner
        # on the relabelled graph yields an already-contiguous assignment.
        again = HashPartitioner().partition(once, 4)
        assert again.layout().is_identity
        twice = once.repartition(again)
        assert twice.ids == once.ids
        assert (twice.indptr == once.indptr).all()
        assert (twice.targets == once.targets).all()
        assert (twice.weights == once.weights).all()

    def test_layout_based_repartition_is_identity_for_any_partitioner(
        self, frozen_graph
    ):
        # Chunk/range partitioners assign by position, so re-running them on
        # the relabelled graph is a *different* partitioning; idempotence is
        # about the same assignment, re-expressed on the new vertex order.
        partitioning = ChunkPartitioner().partition(frozen_graph, 3)
        once = frozen_graph.repartition(partitioning)
        re_expressed = Partitioning(
            3, once.ids, once.partition_layout.assignment_contiguous()
        )
        assert re_expressed.layout().is_identity
        twice = once.repartition(re_expressed)
        assert twice.ids == once.ids
        assert (twice.targets == once.targets).all()

    def test_repartition_cached_for_same_assignment(self, frozen_graph):
        first = frozen_graph.repartition(HashPartitioner().partition(frozen_graph, 4))
        # A fresh but identical partitioning hits the one-slot cache ...
        second = frozen_graph.repartition(HashPartitioner().partition(frozen_graph, 4))
        assert second is first
        # ... and a different assignment replaces it.  (Chunk would coincide:
        # on integer ids 0..n-1, hash(v) % W == position % W.)
        third = frozen_graph.repartition(RangePartitioner().partition(frozen_graph, 4))
        assert third is not first
        assert third.partition_layout.num_workers == 4

    def test_vertex_count_mismatch_raises(self, frozen_graph):
        other = generators.chain(10).freeze()
        partitioning = HashPartitioner().partition(other, 2)
        with pytest.raises(GraphError):
            frozen_graph.repartition(partitioning)

    def test_misaligned_same_size_partitioning_raises(self, frozen_graph):
        # Same vertex count, different ids: the workers array would land on
        # the wrong vertices, so repartition must refuse rather than relabel.
        other = generators.chain(frozen_graph.num_vertices)
        shifted = DiGraph()
        for vertex in other.vertices():
            shifted.add_vertex(vertex + 1_000_000)
        partitioning = HashPartitioner().partition(shifted.freeze(), 2)
        with pytest.raises(GraphError):
            frozen_graph.repartition(partitioning)


class TestHashStability:
    def test_hash_partitioner_stable_across_freeze(self):
        graph = generators.preferential_attachment(200, out_degree=3, seed=4)
        frozen = graph.freeze()
        thawed = frozen.to_digraph()
        reference = HashPartitioner().partition(graph, 5).assignment
        assert HashPartitioner().partition(frozen, 5).assignment == reference
        assert HashPartitioner().partition(thawed, 5).assignment == reference

    def test_hash_partitioner_matches_python_hash_on_string_ids(self):
        graph = DiGraph()
        for name in ("alpha", "beta", "gamma", "delta"):
            graph.add_vertex(name)
        partitioning = HashPartitioner().partition(graph, 3)
        for name in graph.vertices():
            assert partitioning.worker_of(name) == hash(name) % 3

    def test_hash_partitioner_matches_python_hash_on_int_ids(self):
        graph = DiGraph()
        for vertex in (0, 1, 7, 2**61, -5, 123456789):
            graph.add_vertex(vertex)
        partitioning = HashPartitioner().partition(graph, 4)
        for vertex in graph.vertices():
            assert partitioning.worker_of(vertex) == hash(vertex) % 4

    def test_hash_partitioner_mixed_int_float_ids_not_truncated(self):
        # An int first id must not drag float ids through an int64 cast
        # (2.5 -> 2); the mixed list takes the hash() fallback instead.
        graph = DiGraph()
        for vertex in (0, 2.5, 3):
            graph.add_vertex(vertex)
        partitioning = HashPartitioner().partition(graph, 3)
        for vertex in graph.vertices():
            assert partitioning.worker_of(vertex) == hash(vertex) % 3


class TestPartitioningAPI:
    def test_assignment_array_alignment_with_reordered_graph(self, frozen_graph):
        partitioning = HashPartitioner().partition(frozen_graph, 4)
        relabelled = frozen_graph.repartition(partitioning)
        aligned = partitioning.assignment_array(relabelled)
        expected = [partitioning.worker_of(v) for v in relabelled.vertices()]
        assert aligned.tolist() == expected

    def test_worker_outbound_edges_matches_slice_arithmetic(self, frozen_graph):
        partitioning = HashPartitioner().partition(frozen_graph, 4)
        relabelled = frozen_graph.repartition(partitioning)
        offsets = relabelled.partition_layout.offsets
        slice_counts = (
            relabelled.indptr[offsets[1:]] - relabelled.indptr[offsets[:-1]]
        ).tolist()
        assert partitioning.worker_outbound_edges(frozen_graph) == slice_counts

    def test_invalid_workers_array_raises(self):
        with pytest.raises(ConfigurationError):
            Partitioning(2, [0, 1, 2], np.asarray([0, 1, 2]))
        with pytest.raises(ConfigurationError):
            Partitioning(2, [0, 1, 2], np.asarray([0, 1]))

    def test_partitioner_by_name(self):
        assert isinstance(partitioner_by_name("hash"), HashPartitioner)
        assert isinstance(partitioner_by_name("Range"), RangePartitioner)
        assert isinstance(partitioner_by_name("ldg"), LDGPartitioner)
        with pytest.raises(ConfigurationError):
            partitioner_by_name("metis")


class TestEdgeCutAndLDG:
    """Partition quality: the edge_cut metric and the LDG streaming greedy."""

    def test_edge_cut_matches_naive_count(self, frozen_graph):
        partitioning = HashPartitioner().partition(frozen_graph, 4)
        assignment = partitioning.assignment
        expected = sum(
            1
            for source in frozen_graph.vertices()
            for target, _ in frozen_graph.out_edges(source)
            if assignment[source] != assignment[target]
        )
        assert edge_cut(frozen_graph, partitioning) == expected
        # DiGraph loop path agrees with the vectorized CSR path.
        thawed = frozen_graph.to_digraph()
        assert edge_cut(thawed, HashPartitioner().partition(thawed, 4)) == expected

    def test_edge_cut_zero_when_single_worker(self, frozen_graph):
        partitioning = HashPartitioner().partition(frozen_graph, 1)
        assert edge_cut(frozen_graph, partitioning) == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("num_workers", [2, 4, 8])
    def test_ldg_beats_hash_on_clustered_graphs(self, seed, num_workers):
        """On community-structured graphs LDG must cut fewer edges than hash.

        Hash partitioning scatters each community uniformly (expected cut
        fraction (W-1)/W); the streaming greedy keeps communities together.
        The margin is large (typically 1.5-5x fewer cut edges), so this is
        not a flaky statistical bound -- the generators are seeded.
        """
        graph = generators.two_level_hierarchy(4, 12, seed=seed).freeze()
        ldg = LDGPartitioner().partition(graph, num_workers)
        hashed = HashPartitioner().partition(graph, num_workers)
        assert edge_cut(graph, ldg) < edge_cut(graph, hashed)

    def test_ldg_balanced_within_capacity(self, frozen_graph):
        for num_workers in (2, 3, 4, 7):
            partitioning = LDGPartitioner().partition(frozen_graph, num_workers)
            counts = np.diff(partitioning.offsets)
            capacity = -(-frozen_graph.num_vertices // num_workers)
            assert int(counts.max()) <= capacity

    def test_ldg_identical_on_digraph_and_frozen(self):
        graph = generators.two_level_hierarchy(5, 9, seed=7)
        frozen = graph.freeze()
        scalar = LDGPartitioner().partition(graph, 3)
        vectorized = LDGPartitioner().partition(frozen, 3)
        assert np.array_equal(scalar.workers, vectorized.workers)
        assert scalar.ids == vectorized.ids
