"""Unit tests for the ragged message plane's data structures and kernels.

The end-to-end guarantees (bit-identical counters/values vs. the scalar
engine path) live in ``tests/test_differential_engine.py``; these tests pin
the building blocks in isolation: the :class:`repro.bsp.ragged.Ragged`
container, the segment sort/unique/top-k kernel behind top-k ranking, the
row-equality kernel, and the send-order / byte-accounting behaviour of the
plane itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import (
    algorithm_by_name,
    available_algorithms,
    batch_support,
    supports_batch,
)
from repro.algorithms.semi_clustering import SemiClustering, SemiClusteringConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.kernels import available_kernel_tiers, get_kernels
from repro.bsp.ragged import (
    Ragged,
    build_ragged_state,
    ragged_rows_equal,
)
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators
from repro.utils.rng import make_rng


class TestRagged:
    def test_from_rows_round_trip(self):
        rows = [(1.0, 2.0), (), (3.0,), (4.0, 5.0, 6.0)]
        ragged = Ragged.from_rows(rows, dtype=np.float64)
        assert len(ragged) == 4
        assert ragged.lengths.tolist() == [2, 0, 1, 3]
        assert ragged.to_tuples() == list(rows)
        assert ragged.row(3).tolist() == [4.0, 5.0, 6.0]

    def test_take_gathers_rows_with_duplicates(self):
        ragged = Ragged.from_rows([(1,), (2, 3), (4, 5, 6)], dtype=np.int64)
        taken = ragged.take(np.array([2, 0, 2]))
        assert taken.to_tuples() == [(4, 5, 6), (1,), (4, 5, 6)]

    def test_replace_rows_changes_lengths(self):
        ragged = Ragged.from_rows([(1.0,), (2.0, 3.0), (4.0,)], dtype=np.float64)
        replacement = Ragged.from_rows([(9.0, 8.0, 7.0), ()], dtype=np.float64)
        updated = ragged.replace_rows(np.array([0, 2]), replacement)
        assert updated.to_tuples() == [(9.0, 8.0, 7.0), (2.0, 3.0), ()]
        # The original is untouched (value rows are rebuilt, not mutated).
        assert ragged.to_tuples() == [(1.0,), (2.0, 3.0), (4.0,)]

    def test_concat(self):
        left = Ragged.from_rows([(1,), (2, 3)], dtype=np.int64)
        right = Ragged.from_rows([(), (4,)], dtype=np.int64)
        assert Ragged.concat([left, right]).to_tuples() == [(1,), (2, 3), (), (4,)]


# Every concrete tier runnable on this host; the kernel unit tests below run
# once per tier, pinning the cross-tier bit-identity contract wherever the
# compiled tier is installed (tests/test_kernel_tier.py additionally pins the
# compiled loop twins without numba, via the njit shim).
@pytest.fixture(params=available_kernel_tiers())
def kernels(request):
    return get_kernels(request.param)


class TestSegmentUniqueTopK:
    def test_matches_python_reference(self, kernels):
        rng = make_rng(7)
        for _ in range(25):
            num_segments = int(rng.integers(1, 8))
            seg_lengths = rng.integers(0, 12, size=num_segments)
            seg_ids = np.repeat(np.arange(num_segments), seg_lengths)
            # Draw from a small value pool so duplicates are common.
            data = rng.integers(0, 10, size=int(seg_lengths.sum())).astype(np.float64)
            k = int(rng.integers(1, 5))
            result = Ragged.from_lengths(
                *kernels.segment_unique_topk_desc(data, seg_ids, num_segments, k)
            )
            for segment in range(num_segments):
                expected = tuple(sorted(set(data[seg_ids == segment]), reverse=True)[:k])
                assert result.to_tuples()[segment] == expected

    def test_empty_input(self, kernels):
        result = Ragged.from_lengths(
            *kernels.segment_unique_topk_desc(
                np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64), 3, 2
            )
        )
        assert result.to_tuples() == [(), (), ()]


class TestRaggedRowsEqual:
    def test_mixed_equality(self):
        left = Ragged.from_rows([(1.0, 2.0), (3.0,), (), (5.0,)], dtype=np.float64)
        right = Ragged.from_rows([(1.0, 2.0), (4.0,), (), (5.0, 6.0)], dtype=np.float64)
        assert ragged_rows_equal(left, right).tolist() == [True, False, True, False]


class TestSegmentLeftFoldSums:
    def test_matches_python_sequential_fold_bit_for_bit(self, kernels):
        # The whole point of the kernel: np.sum's pairwise reduction rounds
        # differently from a sequential Python fold, and the numeric
        # semi-clustering plane needs the *scalar* semantics exactly.
        rng = make_rng(7)
        for _ in range(25):
            lengths = rng.integers(0, 60, size=rng.integers(1, 40)).astype(np.int64)
            data = rng.random(int(lengths.sum())) * 3.0
            sums = kernels.segment_left_fold_sums(data, lengths)
            offset = 0
            for i, length in enumerate(lengths.tolist()):
                acc = 0.0
                for value in data[offset : offset + length].tolist():
                    acc += value
                assert acc == sums[i]
                offset += length

    def test_empty_segments_sum_to_zero(self, kernels):
        sums = kernels.segment_left_fold_sums(np.empty(0), np.zeros(3, dtype=np.int64))
        assert sums.tolist() == [0.0, 0.0, 0.0]

    def test_masked_variant_preserves_element_order(self, kernels):
        values = np.array([1e16, 1.0, -1e16, 2.0, 0.5, 4.0])
        seg = np.array([0, 0, 0, 1, 1, 1])
        mask = np.array([True, True, True, True, False, True])
        sums = kernels.masked_segment_left_fold(values, mask, seg, 3)
        assert sums[0] == ((0.0 + 1e16) + 1.0) + -1e16  # order-sensitive
        assert sums[1] == 2.0 + 4.0
        assert sums[2] == 0.0


class TestSegmentUniqueRecords:
    def test_dedups_within_segments_only(self, kernels):
        records = np.array(
            [[1.0, 2.0], [1.0, 2.0], [3.0, 0.0], [1.0, 2.0]], dtype=np.float64
        )
        seg = np.array([0, 0, 0, 1])
        unique, unique_seg, counts = kernels.segment_unique_records(records, seg, 3)
        assert counts.tolist() == [2, 1, 0]
        assert unique_seg.tolist() == [0, 0, 1]
        assert unique.tolist() == [[1.0, 2.0], [3.0, 0.0], [1.0, 2.0]]

    def test_rows_sorted_canonically_for_aligned_comparison(self, kernels):
        left = np.array([[2.0, 1.0], [1.0, 1.0]])
        right = np.array([[1.0, 1.0], [2.0, 1.0]])
        seg = np.array([0, 0])
        unique_l, _, _ = kernels.segment_unique_records(left, seg, 1)
        unique_r, _, _ = kernels.segment_unique_records(right, seg, 1)
        # Same record *set*, different input order -> identical canon form.
        assert np.array_equal(unique_l, unique_r)

    def test_signed_zeros_coalesce_like_python_sets(self, kernels):
        records = np.array([[0.0, 5.0], [-0.0, 5.0]])
        seg = np.array([0, 0])
        _, _, counts = kernels.segment_unique_records(records, seg, 1)
        assert counts.tolist() == [1]


class TestNumericObjectCodec:
    """The semi-clustering record codec, exercised directly.

    Engine runs always start from empty cluster tuples, so the non-empty
    branch of the encoder (warm-started values, e.g. an ``initial_value``
    override) is pinned here rather than through a full run.
    """

    def _graph(self):
        return generators.erdos_renyi(10, 0.3, seed=4).freeze()

    def test_encode_decode_round_trip_with_nonempty_values(self):
        from repro.algorithms.semi_clustering import SemiCluster

        graph = self._graph()
        algorithm = SemiClustering()
        config = SemiClusteringConfig(v_max=4)
        ids = graph.ids
        full = SemiCluster(frozenset({ids[0], ids[3], ids[7]}), 1.5, 2.5)
        single = SemiCluster(frozenset({ids[2]}), 0.0, 1.0)
        values = [() for _ in ids]
        values[0] = (full, single)
        values[5] = (full,)
        built = algorithm.encode_numeric_object_plane(graph, values, config)
        assert built is not None
        encoded, cache = built
        assert cache["width"] == config.v_max + 3
        assert encoded.lengths.tolist()[0] == 2 * cache["width"]

        class FakeState:
            pass

        state = FakeState()
        state.cache = cache
        state.ids = ids
        state.values = encoded
        decoded = algorithm.decode_numeric_object_values(state)
        assert decoded == dict(zip(ids, values))

    def test_encode_declines_oversized_clusters_and_vmax(self):
        from repro.algorithms.semi_clustering import SemiCluster

        graph = self._graph()
        algorithm = SemiClustering()
        ids = graph.ids
        values = [() for _ in ids]
        values[1] = (SemiCluster(frozenset(ids[:3]), 1.0, 1.0),)
        # A cluster with more members than v_max cannot be padded.
        assert (
            algorithm.encode_numeric_object_plane(
                graph, values, SemiClusteringConfig(v_max=2)
            )
            is None
        )
        # v_max beyond the padding ceiling declines regardless of values.
        assert (
            algorithm.encode_numeric_object_plane(
                graph, [() for _ in ids], SemiClusteringConfig(v_max=1000)
            )
            is None
        )

    def test_encode_declines_unknown_members(self):
        from repro.algorithms.semi_clustering import SemiCluster

        graph = self._graph()
        algorithm = SemiClustering()
        values = [() for _ in graph.ids]
        values[0] = (SemiCluster(frozenset({"not-a-vertex"}), 0.0, 0.0),)
        assert (
            algorithm.encode_numeric_object_plane(
                graph, values, SemiClusteringConfig(v_max=4)
            )
            is None
        )


class _RunRecorder:
    """Capture the scalar engine's delivery order for comparison."""

    def __init__(self, engine, graph, algorithm, config, **engine_kwargs):
        self.result = engine.run(
            graph, algorithm, config,
            EngineConfig(collect_vertex_values=True, **engine_kwargs),
        )


class TestObjectPlaneDeliveryOrder:
    def test_semi_clustering_message_order_matches_scalar(self):
        """The grouped object deliveries replicate scalar bucket-append order.

        Semi-clustering's candidate ranking is sensitive to delivery order on
        score ties, so equal vertex values across paths (asserted here and,
        exhaustively, in the differential suite) pin the ordering contract.
        """
        engine = BSPEngine(
            cluster=ClusterSpec(num_nodes=1, workers_per_node=3),
            cost_profile=DETERMINISTIC_PROFILE,
        )
        graph = generators.two_level_hierarchy(3, 8, seed=5)
        config = SemiClusteringConfig(c_max=2, s_max=2, v_max=5, tolerance=0.02)
        scalar = _RunRecorder(
            engine, graph, SemiClustering(), config,
            num_workers=3, max_supersteps=6, runtime_seed=1, vectorized=False,
        ).result
        ragged = _RunRecorder(
            engine, graph.freeze(), SemiClustering(), config,
            num_workers=3, max_supersteps=6, runtime_seed=1, vectorized=True,
        ).result
        assert scalar.vertex_values == ragged.vertex_values
        assert scalar.convergence_history == ragged.convergence_history


class TestBuildRaggedState:
    def _run_stub(self, algorithm, graph, vectorized=True, use_combiner=False):
        """Execute one run and return whether a batch plane was engaged."""
        engine = BSPEngine(
            cluster=ClusterSpec(num_nodes=1, workers_per_node=2),
            cost_profile=DETERMINISTIC_PROFILE,
        )
        result = engine.run(
            graph, algorithm, None,
            EngineConfig(
                num_workers=2, max_supersteps=3, runtime_seed=1,
                vectorized=vectorized, use_combiner=use_combiner,
            ),
        )
        return result

    def test_registry_batch_support_flags(self):
        support = batch_support()
        assert set(support) == set(available_algorithms())
        # After this PR every paper algorithm rides a batch plane.  (The
        # registry may also hold user-registered algorithms without
        # compute_batch; those legitimately report False.)
        for name in ("pagerank", "connected-components", "topk-ranking",
                     "semi-clustering", "neighborhood-estimation"):
            assert support[name] is True
        assert supports_batch("nh") and supports_batch("topk")

    def test_payload_kinds_cover_the_variable_size_algorithms(self):
        kinds = {
            name: getattr(algorithm_by_name(name), "batch_payload")
            for name in available_algorithms()
        }
        assert kinds["neighborhood-estimation"] == "rows"
        assert kinds["topk-ranking"] == "ragged"
        assert kinds["semi-clustering"] == "object"
        assert kinds["pagerank"] == "scalar"

    def test_unfrozen_graph_is_ineligible(self):
        graph = generators.erdos_renyi(20, 0.2, seed=1)
        algorithm = algorithm_by_name("neighborhood-estimation")

        class Run:
            pass

        run = Run()
        run.algorithm = algorithm
        run.graph = graph
        run.combiner = None
        run.engine_config = EngineConfig()
        run.values = {}
        assert build_ragged_state(run) is None
