"""Unit tests for the ragged message plane's data structures and kernels.

The end-to-end guarantees (bit-identical counters/values vs. the scalar
engine path) live in ``tests/test_differential_engine.py``; these tests pin
the building blocks in isolation: the :class:`repro.bsp.ragged.Ragged`
container, the segment sort/unique/top-k kernel behind top-k ranking, the
row-equality kernel, and the send-order / byte-accounting behaviour of the
plane itself.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import (
    algorithm_by_name,
    available_algorithms,
    batch_support,
    supports_batch,
)
from repro.algorithms.semi_clustering import SemiClustering, SemiClusteringConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.ragged import (
    Ragged,
    build_ragged_state,
    ragged_rows_equal,
    segment_unique_topk_desc,
)
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators
from repro.utils.rng import make_rng


class TestRagged:
    def test_from_rows_round_trip(self):
        rows = [(1.0, 2.0), (), (3.0,), (4.0, 5.0, 6.0)]
        ragged = Ragged.from_rows(rows, dtype=np.float64)
        assert len(ragged) == 4
        assert ragged.lengths.tolist() == [2, 0, 1, 3]
        assert ragged.to_tuples() == list(rows)
        assert ragged.row(3).tolist() == [4.0, 5.0, 6.0]

    def test_take_gathers_rows_with_duplicates(self):
        ragged = Ragged.from_rows([(1,), (2, 3), (4, 5, 6)], dtype=np.int64)
        taken = ragged.take(np.array([2, 0, 2]))
        assert taken.to_tuples() == [(4, 5, 6), (1,), (4, 5, 6)]

    def test_replace_rows_changes_lengths(self):
        ragged = Ragged.from_rows([(1.0,), (2.0, 3.0), (4.0,)], dtype=np.float64)
        replacement = Ragged.from_rows([(9.0, 8.0, 7.0), ()], dtype=np.float64)
        updated = ragged.replace_rows(np.array([0, 2]), replacement)
        assert updated.to_tuples() == [(9.0, 8.0, 7.0), (2.0, 3.0), ()]
        # The original is untouched (value rows are rebuilt, not mutated).
        assert ragged.to_tuples() == [(1.0,), (2.0, 3.0), (4.0,)]

    def test_concat(self):
        left = Ragged.from_rows([(1,), (2, 3)], dtype=np.int64)
        right = Ragged.from_rows([(), (4,)], dtype=np.int64)
        assert Ragged.concat([left, right]).to_tuples() == [(1,), (2, 3), (), (4,)]


class TestSegmentUniqueTopK:
    def test_matches_python_reference(self):
        rng = make_rng(7)
        for _ in range(25):
            num_segments = int(rng.integers(1, 8))
            seg_lengths = rng.integers(0, 12, size=num_segments)
            seg_ids = np.repeat(np.arange(num_segments), seg_lengths)
            # Draw from a small value pool so duplicates are common.
            data = rng.integers(0, 10, size=int(seg_lengths.sum())).astype(np.float64)
            k = int(rng.integers(1, 5))
            result = segment_unique_topk_desc(data, seg_ids, num_segments, k)
            for segment in range(num_segments):
                expected = tuple(sorted(set(data[seg_ids == segment]), reverse=True)[:k])
                assert result.to_tuples()[segment] == expected

    def test_empty_input(self):
        result = segment_unique_topk_desc(
            np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64), 3, 2
        )
        assert result.to_tuples() == [(), (), ()]


class TestRaggedRowsEqual:
    def test_mixed_equality(self):
        left = Ragged.from_rows([(1.0, 2.0), (3.0,), (), (5.0,)], dtype=np.float64)
        right = Ragged.from_rows([(1.0, 2.0), (4.0,), (), (5.0, 6.0)], dtype=np.float64)
        assert ragged_rows_equal(left, right).tolist() == [True, False, True, False]


class _RunRecorder:
    """Capture the scalar engine's delivery order for comparison."""

    def __init__(self, engine, graph, algorithm, config, **engine_kwargs):
        self.result = engine.run(
            graph, algorithm, config,
            EngineConfig(collect_vertex_values=True, **engine_kwargs),
        )


class TestObjectPlaneDeliveryOrder:
    def test_semi_clustering_message_order_matches_scalar(self):
        """The grouped object deliveries replicate scalar bucket-append order.

        Semi-clustering's candidate ranking is sensitive to delivery order on
        score ties, so equal vertex values across paths (asserted here and,
        exhaustively, in the differential suite) pin the ordering contract.
        """
        engine = BSPEngine(
            cluster=ClusterSpec(num_nodes=1, workers_per_node=3),
            cost_profile=DETERMINISTIC_PROFILE,
        )
        graph = generators.two_level_hierarchy(3, 8, seed=5)
        config = SemiClusteringConfig(c_max=2, s_max=2, v_max=5, tolerance=0.02)
        scalar = _RunRecorder(
            engine, graph, SemiClustering(), config,
            num_workers=3, max_supersteps=6, runtime_seed=1, vectorized=False,
        ).result
        ragged = _RunRecorder(
            engine, graph.freeze(), SemiClustering(), config,
            num_workers=3, max_supersteps=6, runtime_seed=1, vectorized=True,
        ).result
        assert scalar.vertex_values == ragged.vertex_values
        assert scalar.convergence_history == ragged.convergence_history


class TestBuildRaggedState:
    def _run_stub(self, algorithm, graph, vectorized=True, use_combiner=False):
        """Execute one run and return whether a batch plane was engaged."""
        engine = BSPEngine(
            cluster=ClusterSpec(num_nodes=1, workers_per_node=2),
            cost_profile=DETERMINISTIC_PROFILE,
        )
        result = engine.run(
            graph, algorithm, None,
            EngineConfig(
                num_workers=2, max_supersteps=3, runtime_seed=1,
                vectorized=vectorized, use_combiner=use_combiner,
            ),
        )
        return result

    def test_registry_batch_support_flags(self):
        support = batch_support()
        assert set(support) == set(available_algorithms())
        # After this PR every paper algorithm rides a batch plane.  (The
        # registry may also hold user-registered algorithms without
        # compute_batch; those legitimately report False.)
        for name in ("pagerank", "connected-components", "topk-ranking",
                     "semi-clustering", "neighborhood-estimation"):
            assert support[name] is True
        assert supports_batch("nh") and supports_batch("topk")

    def test_payload_kinds_cover_the_variable_size_algorithms(self):
        kinds = {
            name: getattr(algorithm_by_name(name), "batch_payload")
            for name in available_algorithms()
        }
        assert kinds["neighborhood-estimation"] == "rows"
        assert kinds["topk-ranking"] == "ragged"
        assert kinds["semi-clustering"] == "object"
        assert kinds["pagerank"] == "scalar"

    def test_unfrozen_graph_is_ineligible(self):
        graph = generators.erdos_renyi(20, 0.2, seed=1)
        algorithm = algorithm_by_name("neighborhood-estimation")

        class Run:
            pass

        run = Run()
        run.algorithm = algorithm
        run.graph = graph
        run.combiner = None
        run.engine_config = EngineConfig()
        run.values = {}
        assert build_ragged_state(run) is None
