"""Unit tests for ``scripts/check_doc_links.py`` plus a live docs check.

The checker is a standalone script (no package), so it is loaded with
importlib.  The unit tests pin the three classes of links it historically
missed -- setext headings, GitHub's ``-N`` duplicate-heading suffixes and
reference-style link definitions -- and the live test runs the real
``make docs-check`` file set so a broken link fails the tier-1 suite, not
just the CI docs job.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_doc_links.py"

spec = importlib.util.spec_from_file_location("check_doc_links", SCRIPT)
check_doc_links = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_doc_links)


def write(tmp_path: Path, name: str, text: str) -> Path:
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


# ------------------------------------------------------------------ slugs
def test_atx_heading_slugs(tmp_path):
    doc = write(tmp_path, "doc.md", "# Big Title\n\n## `code` and [link](x.md) text\n")
    assert check_doc_links.heading_slugs(doc) == {"big-title", "code-and-link-text"}


def test_setext_headings_are_recognised(tmp_path):
    doc = write(
        tmp_path,
        "doc.md",
        "Top Title\n=========\n\nbody\n\nSection Two\n-----------\n\nmore body\n",
    )
    assert {"top-title", "section-two"} <= check_doc_links.heading_slugs(doc)


def test_setext_underline_is_not_confused_with_rules(tmp_path):
    # A --- after a blank line is a thematic break; after a list item or
    # table row it is not a heading either.
    doc = write(
        tmp_path,
        "doc.md",
        "# Real\n\n---\n\n- item\n---\n\n| a | b |\n|---|---|\n",
    )
    assert check_doc_links.heading_slugs(doc) == {"real"}


def test_duplicate_headings_get_suffixed_slugs(tmp_path):
    doc = write(tmp_path, "doc.md", "## Setup\n\n## Setup\n\n## Setup\n")
    assert check_doc_links.heading_slugs(doc) == {"setup", "setup-1", "setup-2"}


def test_fenced_code_headings_are_ignored(tmp_path):
    doc = write(tmp_path, "doc.md", "# Real\n```\n# not a heading\n```\n")
    assert check_doc_links.heading_slugs(doc) == {"real"}


# ------------------------------------------------------------------ links
def test_missing_file_and_anchor_are_reported(tmp_path):
    write(tmp_path, "other.md", "# Exists\n")
    doc = write(
        tmp_path,
        "doc.md",
        "[ok](other.md#exists)\n[bad file](nope.md)\n[bad anchor](other.md#missing)\n",
    )
    problems = check_doc_links.check_file(doc)
    assert len(problems) == 2
    assert any("nope.md" in p for p in problems)
    assert any("missing anchor" in p for p in problems)


def test_duplicate_heading_anchor_links_resolve(tmp_path):
    write(tmp_path, "other.md", "## Setup\n\n## Setup\n")
    doc = write(tmp_path, "doc.md", "[second setup](other.md#setup-1)\n")
    assert check_doc_links.check_file(doc) == []


def test_setext_anchor_links_resolve(tmp_path):
    write(tmp_path, "other.md", "Install Guide\n=============\n")
    doc = write(tmp_path, "doc.md", "[guide](other.md#install-guide)\n")
    assert check_doc_links.check_file(doc) == []


def test_reference_style_definitions_are_checked(tmp_path):
    write(tmp_path, "real.md", "# Here\n")
    doc = write(
        tmp_path,
        "doc.md",
        "See [the docs][docs] and [more][gone].\n\n"
        "[docs]: real.md#here\n"
        "[gone]: missing.md\n",
    )
    problems = check_doc_links.check_file(doc)
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_external_targets_are_skipped(tmp_path):
    doc = write(
        tmp_path,
        "doc.md",
        "[site](https://example.com/x)\n\n[ref]: https://example.com/y\n",
    )
    assert check_doc_links.check_file(doc) == []


def test_bare_fragment_checks_own_document(tmp_path):
    doc = write(tmp_path, "doc.md", "# Intro\n[jump](#intro)\n[bad](#nope)\n")
    problems = check_doc_links.check_file(doc)
    assert len(problems) == 1
    assert "#nope" in problems[0]


# ------------------------------------------------------------- live docs
def test_repo_docs_have_no_broken_links(capsys):
    """Run the checker over the same file set as ``make docs-check``."""
    files = [str(REPO_ROOT / "README.md")]
    files += sorted(str(p) for p in (REPO_ROOT / "docs").glob("*.md"))
    assert files, "docs/*.md glob found nothing"
    rc = check_doc_links.main(files)
    output = capsys.readouterr().out
    assert rc == 0, f"broken documentation links:\n{output}"
