"""Unit tests for the DiGraph data structure and the GraphBuilder."""

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph


class TestDiGraphBasics:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.vertices()) == []

    def test_add_vertex_idempotent(self):
        graph = DiGraph()
        graph.add_vertex(1)
        graph.add_vertex(1)
        assert graph.num_vertices == 1

    def test_add_edge_creates_endpoints(self):
        graph = DiGraph()
        graph.add_edge(1, 2)
        assert graph.has_vertex(1) and graph.has_vertex(2)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_degrees(self, tiny_graph):
        assert tiny_graph.out_degree(0) == 2
        assert tiny_graph.in_degree(2) == 2
        assert tiny_graph.degree(2) == tiny_graph.in_degree(2) + tiny_graph.out_degree(2)

    def test_parallel_edges_counted(self):
        graph = DiGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 2)
        assert graph.num_edges == 2
        assert graph.out_degree(1) == 2

    def test_successors_and_out_edges(self, tiny_graph):
        assert set(tiny_graph.successors(0)) == {1, 2}
        assert all(weight == 1.0 for _, weight in tiny_graph.out_edges(0))

    def test_edges_iterator_total(self, tiny_graph):
        assert len(list(tiny_graph.edges())) == tiny_graph.num_edges

    def test_degree_sequences_align_with_vertices(self, tiny_graph):
        assert len(tiny_graph.out_degree_sequence()) == tiny_graph.num_vertices
        assert sum(tiny_graph.out_degree_sequence()) == tiny_graph.num_edges
        assert sum(tiny_graph.in_degree_sequence()) == tiny_graph.num_edges

    def test_unknown_vertex_raises(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.successors(99)
        with pytest.raises(GraphError):
            graph.out_degree(99)

    def test_contains_and_len(self, tiny_graph):
        assert 0 in tiny_graph
        assert 99 not in tiny_graph
        assert len(tiny_graph) == tiny_graph.num_vertices


class TestDiGraphDerivations:
    def test_subgraph_keeps_only_internal_edges(self, tiny_graph):
        sub = tiny_graph.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.has_edge(0, 1) and sub.has_edge(2, 0)
        assert not sub.has_edge(2, 3)

    def test_subgraph_of_disjoint_vertices_has_no_edges(self, tiny_graph):
        sub = tiny_graph.subgraph([0, 4])
        assert sub.num_edges == 0

    def test_as_undirected_doubles_edges(self, tiny_graph):
        undirected = tiny_graph.as_undirected()
        assert undirected.num_edges == 2 * tiny_graph.num_edges
        assert undirected.has_edge(1, 0)

    def test_reverse_flips_edges(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.num_edges == tiny_graph.num_edges

    def test_copy_is_independent(self, tiny_graph):
        dup = tiny_graph.copy()
        dup.add_edge(0, 5)
        assert dup.num_edges == tiny_graph.num_edges + 1

    def test_relabel_to_integers(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        relabelled, mapping = graph.relabel_to_integers()
        assert set(mapping.values()) == {0, 1, 2}
        assert relabelled.has_edge(mapping["a"], mapping["b"])


class TestGraphBuilder:
    def test_self_loops_dropped_by_default(self):
        builder = GraphBuilder()
        builder.add_edge(1, 1)
        builder.add_edge(1, 2)
        graph = builder.build()
        assert graph.num_edges == 1
        assert builder.stats.self_loops_dropped == 1

    def test_self_loops_allowed_when_enabled(self):
        builder = GraphBuilder(allow_self_loops=True)
        builder.add_edge(1, 1)
        assert builder.build().num_edges == 1

    def test_deduplicate_parallel_edges(self):
        builder = GraphBuilder(deduplicate=True)
        builder.add_edges([(1, 2), (1, 2), (2, 3)])
        graph = builder.build()
        assert graph.num_edges == 2
        assert builder.stats.duplicates_dropped == 1

    def test_stats_as_dict(self):
        builder = GraphBuilder()
        builder.add_edge(1, 2)
        stats = builder.stats.as_dict()
        assert stats["edges_added"] == 1

    def test_add_vertex_chainable(self):
        graph = GraphBuilder().add_vertex(1).add_vertex(2).build()
        assert graph.num_vertices == 2
