"""Integration tests of the BSP engine: execution semantics, counters,
termination, memory enforcement and phase accounting."""

import pytest

from repro.algorithms.base import IterativeAlgorithm
from repro.algorithms.connected_components import ConnectedComponents
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.exceptions import BSPError, OutOfMemoryError
from repro.graph import generators
from repro.graph.digraph import DiGraph


class EchoOnce(IterativeAlgorithm):
    """Test algorithm: every vertex messages its neighbours once, then halts."""

    name = "echo-once"

    def default_config(self):
        return None

    def initial_value(self, vertex, graph, config):
        return 0

    def compute(self, ctx, messages, config):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(1.0)
        ctx.value = ctx.value + len(messages)
        ctx.vote_to_halt()


class TestEngineBasics:
    def test_empty_graph_rejected(self, engine, engine_config):
        with pytest.raises(BSPError):
            engine.run(DiGraph(), PageRank(), PageRankConfig(), engine_config)

    def test_echo_terminates_after_two_supersteps(self, engine, engine_config, tiny_graph):
        result = engine.run(tiny_graph, EchoOnce(), None, engine_config)
        assert result.num_iterations == 2
        assert result.converged

    def test_message_counts_match_edges(self, engine, engine_config, tiny_graph):
        result = engine.run(tiny_graph, EchoOnce(), None, engine_config)
        first = result.iterations[0]
        assert first.total_messages == tiny_graph.num_edges
        # Every vertex executed compute in superstep 0.
        assert first.active_vertices == tiny_graph.num_vertices

    def test_halted_vertices_reactivated_by_messages(self, engine, engine_config, tiny_graph):
        result = engine.run(tiny_graph, EchoOnce(), None, engine_config)
        second = result.iterations[1]
        # Only vertices with incoming messages are active in superstep 1.
        vertices_with_in_edges = sum(1 for v in tiny_graph.vertices() if tiny_graph.in_degree(v) > 0)
        assert second.active_vertices == vertices_with_in_edges

    def test_worker_count_capped_by_vertices(self, engine, tiny_graph):
        config = EngineConfig(num_workers=100)
        result = engine.run(tiny_graph, EchoOnce(), None, config)
        assert result.num_workers <= tiny_graph.num_vertices

    def test_local_vs_remote_split_sums_to_total(self, engine, engine_config, small_scale_free_graph):
        result = engine.run(small_scale_free_graph, EchoOnce(), None, engine_config)
        first = result.iterations[0]
        assert first.local_messages + first.remote_messages == small_scale_free_graph.num_edges
        assert first.remote_messages > 0

    def test_single_worker_all_messages_local(self, engine, small_scale_free_graph):
        config = EngineConfig(num_workers=1)
        result = engine.run(small_scale_free_graph, EchoOnce(), None, config)
        assert result.iterations[0].remote_messages == 0
        assert result.iterations[0].local_messages == small_scale_free_graph.num_edges

    def test_max_supersteps_budget_enforced(self, engine, tiny_graph):
        config = EngineConfig(num_workers=2, max_supersteps=3)
        result = engine.run(tiny_graph, PageRank(), PageRankConfig(tolerance=1e-15), config)
        assert result.num_iterations == 3
        assert not result.converged

    def test_phase_times_present(self, engine, engine_config, tiny_graph):
        result = engine.run(tiny_graph, EchoOnce(), None, engine_config)
        assert result.phase_times.setup > 0
        assert result.phase_times.read > 0
        assert result.phase_times.write > 0
        assert result.phase_times.superstep == pytest.approx(result.superstep_runtime)
        assert result.total_runtime > result.superstep_runtime

    def test_collect_vertex_values(self, engine, tiny_graph):
        config = EngineConfig(num_workers=2, collect_vertex_values=True)
        result = engine.run(tiny_graph, EchoOnce(), None, config)
        assert result.vertex_values is not None
        assert set(result.vertex_values) == set(tiny_graph.vertices())

    def test_values_not_collected_by_default(self, engine, engine_config, tiny_graph):
        result = engine.run(tiny_graph, EchoOnce(), None, engine_config)
        assert result.vertex_values is None

    def test_critical_worker_recorded(self, engine, engine_config, small_scale_free_graph):
        result = engine.run(small_scale_free_graph, EchoOnce(), None, engine_config)
        profile = result.iterations[0]
        times = [c.worker_time for c in profile.worker_counters]
        assert profile.critical_worker == times.index(max(times))

    def test_runtime_equals_critical_worker_plus_barrier(self, engine, engine_config, small_scale_free_graph):
        result = engine.run(small_scale_free_graph, EchoOnce(), None, engine_config)
        profile = result.iterations[0]
        expected = profile.critical_counters.worker_time + DETERMINISTIC_PROFILE.barrier_overhead
        assert profile.runtime == pytest.approx(expected)

    def test_config_dict_recorded(self, engine, engine_config, tiny_graph):
        result = engine.run(tiny_graph, PageRank(), PageRankConfig(tolerance=0.01), engine_config)
        assert result.config["tolerance"] == 0.01


class TestEngineMemoryEnforcement:
    def test_out_of_memory_raised_for_tiny_allocation(self):
        cluster = ClusterSpec(num_nodes=1, workers_per_node=3, worker_memory_bytes=2_000)
        engine = BSPEngine(cluster=cluster, cost_profile=DETERMINISTIC_PROFILE)
        graph = generators.preferential_attachment(300, out_degree=8, seed=1)
        config = EngineConfig(num_workers=2, enforce_memory=True)
        with pytest.raises(OutOfMemoryError):
            engine.run(graph, PageRank(), PageRankConfig(tolerance=1e-9), config)

    def test_same_run_succeeds_without_enforcement(self):
        cluster = ClusterSpec(num_nodes=1, workers_per_node=3, worker_memory_bytes=2_000)
        engine = BSPEngine(cluster=cluster, cost_profile=DETERMINISTIC_PROFILE)
        graph = generators.preferential_attachment(300, out_degree=8, seed=1)
        config = EngineConfig(num_workers=2, enforce_memory=False, max_supersteps=3)
        result = engine.run(graph, PageRank(), PageRankConfig(tolerance=1e-9), config)
        assert result.num_iterations == 3


class TestEngineCombiner:
    def test_combiner_reduces_buffered_lists_not_counters(self, engine, small_scale_free_graph):
        config_plain = EngineConfig(num_workers=4, max_supersteps=3, use_combiner=False)
        config_combined = EngineConfig(num_workers=4, max_supersteps=3, use_combiner=True)
        pagerank = PageRank()
        pr_config = PageRankConfig(tolerance=1e-12)
        plain = engine.run(small_scale_free_graph, pagerank, pr_config, config_plain)
        combined = engine.run(small_scale_free_graph, pagerank, pr_config, config_combined)
        # Message counters are identical: combining happens after counting.
        assert plain.iterations[0].total_messages == combined.iterations[0].total_messages
        # And the PageRank results agree because the combiner is the sum.
        assert plain.num_iterations == combined.num_iterations


class TestDeterminism:
    def test_identical_runs_produce_identical_profiles(self, engine, engine_config, small_scale_free_graph):
        pagerank = PageRank()
        config = PageRankConfig(tolerance=1e-6)
        first = engine.run(small_scale_free_graph, pagerank, config, engine_config)
        second = engine.run(small_scale_free_graph, pagerank, config, engine_config)
        assert first.num_iterations == second.num_iterations
        assert first.superstep_runtime == pytest.approx(second.superstep_runtime)
        assert first.iterations[0].total_messages == second.iterations[0].total_messages
