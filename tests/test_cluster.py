"""Unit tests for the cluster model: specs, cost profiles, network, memory."""

import pytest

from repro.cluster.cost_profile import DEFAULT_PROFILE, DETERMINISTIC_PROFILE, CostProfile
from repro.cluster.memory import MemoryModel
from repro.cluster.network import NetworkModel
from repro.cluster.spec import PAPER_CLUSTER, TEST_CLUSTER, ClusterSpec
from repro.exceptions import ConfigurationError, OutOfMemoryError


class TestClusterSpec:
    def test_paper_cluster_has_29_workers(self):
        assert PAPER_CLUSTER.num_workers == 29

    def test_total_memory(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=2, worker_memory_bytes=100)
        assert spec.total_memory_bytes == spec.num_workers * 100

    def test_scaled_changes_node_count_only(self):
        scaled = PAPER_CLUSTER.scaled(5)
        assert scaled.num_nodes == 5
        assert scaled.workers_per_node == PAPER_CLUSTER.workers_per_node

    def test_at_least_one_worker(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=1)
        assert spec.num_workers == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"workers_per_node": 0},
            {"worker_memory_bytes": 0},
            {"network_bandwidth_bytes_per_s": 0},
            {"local_bandwidth_bytes_per_s": 0},
        ],
    )
    def test_invalid_spec_raises(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterSpec(**kwargs)

    def test_test_cluster_smaller_than_paper(self):
        assert TEST_CLUSTER.num_workers < PAPER_CLUSTER.num_workers


class TestCostProfile:
    def test_default_profile_network_dominated(self):
        # One remote byte must cost more than one local byte, and a remote
        # message more than a local one (modelling assumption v).
        assert DEFAULT_PROFILE.cost_per_remote_byte > DEFAULT_PROFILE.cost_per_local_byte
        assert DEFAULT_PROFILE.cost_per_remote_message > DEFAULT_PROFILE.cost_per_local_message

    def test_deterministic_profile_has_no_noise(self):
        assert DETERMINISTIC_PROFILE.noise_std == 0.0
        assert DETERMINISTIC_PROFILE.congestion_factor == 0.0

    def test_with_noise_returns_copy(self):
        noisy = DETERMINISTIC_PROFILE.with_noise(0.1)
        assert noisy.noise_std == 0.1
        assert DETERMINISTIC_PROFILE.noise_std == 0.0

    def test_with_congestion_returns_copy(self):
        congested = DETERMINISTIC_PROFILE.with_congestion(0.5)
        assert congested.congestion_factor == 0.5

    def test_scaled_multiplies_unit_costs(self):
        doubled = DETERMINISTIC_PROFILE.scaled(2.0)
        assert doubled.cost_per_remote_byte == pytest.approx(
            2 * DETERMINISTIC_PROFILE.cost_per_remote_byte
        )
        assert doubled.barrier_overhead == pytest.approx(
            2 * DETERMINISTIC_PROFILE.barrier_overhead
        )


class TestNetworkModel:
    def test_remote_delivery_more_expensive_than_local(self):
        model = NetworkModel(DETERMINISTIC_PROFILE)
        local = model.local_delivery_time(100, 10_000)
        remote = model.remote_delivery_time(100, 10_000)
        assert remote > local

    def test_messaging_time_additive(self):
        model = NetworkModel(DETERMINISTIC_PROFILE)
        total = model.messaging_time(10, 1000, 20, 2000)
        assert total == pytest.approx(
            model.local_delivery_time(10, 1000) + model.remote_delivery_time(20, 2000)
        )

    def test_zero_messages_zero_time(self):
        model = NetworkModel(DETERMINISTIC_PROFILE)
        assert model.messaging_time(0, 0, 0, 0) == 0.0

    def test_congestion_adds_superlinear_penalty(self):
        base = NetworkModel(DETERMINISTIC_PROFILE)
        congested = NetworkModel(DETERMINISTIC_PROFILE.with_congestion(0.5))
        volume = 50_000_000
        assert congested.remote_delivery_time(10, volume) > base.remote_delivery_time(10, volume)


class TestMemoryModel:
    def test_estimate_totals(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2, worker_memory_bytes=10_000)
        model = MemoryModel(spec)
        estimate = model.estimate(10, 20, 100, 5, 500)
        assert estimate.total_bytes == estimate.graph_bytes + estimate.state_bytes + estimate.message_bytes

    def test_check_disabled_never_raises(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2, worker_memory_bytes=1)
        model = MemoryModel(spec, enforce=False)
        estimate = model.estimate(10**6, 10**6, 10**6, 10**6, 10**9)
        model.check(0, estimate)  # no exception

    def test_check_enforced_raises_when_exceeded(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2, worker_memory_bytes=1000)
        model = MemoryModel(spec, enforce=True)
        estimate = model.estimate(100, 100, 100, 100, 100_000)
        with pytest.raises(OutOfMemoryError):
            model.check(0, estimate)

    def test_check_enforced_passes_when_within_budget(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2, worker_memory_bytes=10**9)
        model = MemoryModel(spec, enforce=True)
        estimate = model.estimate(10, 10, 10, 10, 10)
        model.check(0, estimate)  # no exception

    def test_utilisation_fraction(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2, worker_memory_bytes=10_000)
        model = MemoryModel(spec)
        estimate = model.estimate(0, 0, 5_000, 0, 0)
        assert model.utilisation(estimate) == pytest.approx(0.5)
