"""Correctness tests for top-k ranking, semi-clustering and neighborhood
estimation, plus the algorithm registry."""

import pytest

from repro.algorithms.neighborhood import (
    NeighborhoodConfig,
    NeighborhoodEstimation,
    estimate_neighborhood_sizes,
)
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.registry import algorithm_by_name, available_algorithms, register_algorithm
from repro.algorithms.semi_clustering import (
    SemiCluster,
    SemiClustering,
    SemiClusteringConfig,
    best_clusters,
)
from repro.algorithms.topk_ranking import TopKRanking, TopKRankingConfig, config_with_ranks
from repro.bsp.engine import EngineConfig
from repro.exceptions import ConfigurationError
from repro.graph import generators
from repro.graph.digraph import DiGraph


class TestTopKRanking:
    def run_topk(self, engine, graph, ranks=None, k=3, tolerance=0.001):
        config = TopKRankingConfig(k=k, tolerance=tolerance, ranks=ranks)
        engine_config = EngineConfig(num_workers=3, collect_vertex_values=True)
        return engine.run(graph, TopKRanking(), config, engine_config)

    def test_propagates_highest_rank_along_chain(self, engine):
        graph = generators.chain(6).reverse()  # 5 -> 4 -> ... -> 0
        ranks = {v: float(v) for v in graph.vertices()}
        result = self.run_topk(engine, graph, ranks=ranks, k=2)
        # Vertex 0 receives nothing (no in-edges in the reversed chain ... it
        # is the sink), vertex 0's list should contain the largest reachable
        # ranks flowing down the chain: every vertex's list contains its own
        # rank and the best ranks of its upstream neighbours.
        values = result.vertex_values
        assert max(values[0]) == pytest.approx(5.0)
        assert max(values[3]) == pytest.approx(5.0)

    def test_lists_bounded_by_k(self, engine, small_scale_free_graph):
        ranks = {v: float(hash(v) % 1000) for v in small_scale_free_graph.vertices()}
        result = self.run_topk(engine, small_scale_free_graph, ranks=ranks, k=3)
        assert all(len(lst) <= 3 for lst in result.vertex_values.values())

    def test_lists_sorted_descending(self, engine, small_scale_free_graph):
        ranks = {v: float((v * 37) % 991) for v in small_scale_free_graph.vertices()}
        result = self.run_topk(engine, small_scale_free_graph, ranks=ranks, k=4)
        for lst in result.vertex_values.values():
            assert list(lst) == sorted(lst, reverse=True)

    def test_variable_activity_across_iterations(self, engine, small_scale_free_graph):
        ranks = {v: float((v * 13) % 503) for v in small_scale_free_graph.vertices()}
        result = self.run_topk(engine, small_scale_free_graph, ranks=ranks)
        active = [p.active_vertices for p in result.iterations]
        assert min(active) < max(active)

    def test_fallback_ranks_when_none_provided(self, engine, tiny_graph):
        result = self.run_topk(engine, tiny_graph, ranks=None)
        assert result.converged

    def test_missing_rank_raises(self, engine, tiny_graph):
        config = TopKRankingConfig(k=2, ranks={0: 1.0})  # other vertices missing
        with pytest.raises(ConfigurationError):
            engine.run(tiny_graph, TopKRanking(), config, EngineConfig(num_workers=2))

    def test_uses_pagerank_output(self, engine, small_scale_free_graph):
        pr_result = engine.run(
            small_scale_free_graph,
            PageRank(),
            PageRankConfig(tolerance=1e-6),
            EngineConfig(num_workers=3, collect_vertex_values=True),
        )
        config = config_with_ranks(TopKRankingConfig(k=3), pr_result.vertex_values)
        result = engine.run(
            small_scale_free_graph, TopKRanking(), config,
            EngineConfig(num_workers=3, collect_vertex_values=True),
        )
        top_rank = max(pr_result.vertex_values.values())
        best_seen = max(max(lst) for lst in result.vertex_values.values())
        assert best_seen == pytest.approx(top_rank)

    def test_message_size_grows_with_list_length(self):
        algorithm = TopKRanking()
        assert algorithm.message_size((1.0,)) < algorithm.message_size((1.0, 2.0, 3.0))

    def test_config_validation(self):
        algorithm = TopKRanking()
        with pytest.raises(ConfigurationError):
            algorithm.validate_config(TopKRankingConfig(k=0))
        with pytest.raises(ConfigurationError):
            algorithm.validate_config(TopKRankingConfig(tolerance=0.0))


class TestSemiCluster:
    def test_singleton_score_is_zero(self):
        cluster = SemiCluster.singleton("a", [("b", 1.0), ("c", 2.0)])
        assert cluster.score(0.1) == 0.0
        assert cluster.boundary_weight == pytest.approx(3.0)

    def test_extension_moves_weight_from_boundary_to_internal(self):
        cluster = SemiCluster.singleton("a", [("b", 1.0), ("c", 2.0)])
        extended = cluster.extended_with("b", [("a", 1.0), ("d", 0.5)])
        assert "b" in extended.members
        assert extended.internal_weight == pytest.approx(1.0)
        assert extended.boundary_weight == pytest.approx(2.0 + 0.5)

    def test_score_penalises_boundary_edges(self):
        tight = SemiCluster(frozenset({"a", "b"}), internal_weight=4.0, boundary_weight=0.0)
        leaky = SemiCluster(frozenset({"a", "b"}), internal_weight=4.0, boundary_weight=10.0)
        assert tight.score(0.5) > leaky.score(0.5)

    def test_score_normalised_by_clique_size(self):
        small = SemiCluster(frozenset({"a", "b"}), internal_weight=1.0, boundary_weight=0.0)
        large = SemiCluster(frozenset({"a", "b", "c", "d"}), internal_weight=1.0, boundary_weight=0.0)
        assert small.score(0.1) > large.score(0.1)


class TestSemiClustering:
    def test_runs_and_converges_on_community_graph(self, engine, community_graph):
        config = SemiClusteringConfig(tolerance=0.01, v_max=6)
        engine_config = EngineConfig(num_workers=3, collect_vertex_values=True, max_supersteps=30)
        result = engine.run(community_graph, SemiClustering(), config, engine_config)
        assert result.converged
        assert result.num_iterations >= 2

    def test_every_vertex_belongs_to_its_clusters(self, engine, community_graph):
        config = SemiClusteringConfig(tolerance=0.01, v_max=6, c_max=2)
        engine_config = EngineConfig(num_workers=3, collect_vertex_values=True, max_supersteps=30)
        result = engine.run(community_graph, SemiClustering(), config, engine_config)
        for vertex, clusters in result.vertex_values.items():
            for cluster in clusters:
                assert vertex in cluster.members

    def test_cluster_sizes_bounded_by_vmax(self, engine, community_graph):
        config = SemiClusteringConfig(tolerance=0.01, v_max=4)
        engine_config = EngineConfig(num_workers=3, collect_vertex_values=True, max_supersteps=30)
        result = engine.run(community_graph, SemiClustering(), config, engine_config)
        for clusters in result.vertex_values.values():
            for cluster in clusters:
                assert len(cluster.members) <= 4

    def test_message_bytes_grow_across_early_iterations(self, engine, community_graph):
        # Category (ii).a of the paper: message sizes grow as clusters grow.
        # A small boundary factor keeps extended clusters' scores above the
        # singletons' so that growing clusters are the ones forwarded.
        config = SemiClusteringConfig(tolerance=0.001, v_max=8, boundary_factor=0.02)
        engine_config = EngineConfig(num_workers=3, max_supersteps=20)
        result = engine.run(community_graph, SemiClustering(), config, engine_config)
        sizes = [p.average_message_size for p in result.iterations if p.total_messages]
        assert sizes[1] > sizes[0]

    def test_best_clusters_aggregation(self, engine, community_graph):
        config = SemiClusteringConfig(tolerance=0.01, v_max=6)
        engine_config = EngineConfig(num_workers=3, collect_vertex_values=True, max_supersteps=30)
        result = engine.run(community_graph, SemiClustering(), config, engine_config)
        ranked = best_clusters(result.vertex_values, boundary_factor=config.boundary_factor, top=5)
        assert len(ranked) <= 5
        scores = [c.score(config.boundary_factor) for c in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_message_size_counts_members(self):
        algorithm = SemiClustering()
        small = (SemiCluster(frozenset({1}), 0.0, 1.0),)
        large = (SemiCluster(frozenset({1, 2, 3}), 1.0, 1.0),)
        assert algorithm.message_size(large) > algorithm.message_size(small)

    def test_config_validation(self):
        algorithm = SemiClustering()
        with pytest.raises(ConfigurationError):
            algorithm.validate_config(SemiClusteringConfig(boundary_factor=1.5))
        with pytest.raises(ConfigurationError):
            algorithm.validate_config(SemiClusteringConfig(v_max=0))


class TestNeighborhoodEstimation:
    def test_estimates_grow_with_reachability(self, engine):
        graph = generators.chain(30)
        config = NeighborhoodConfig(max_hops=40, num_sketches=6)
        engine_config = EngineConfig(num_workers=3, collect_vertex_values=True, max_supersteps=60)
        result = engine.run(graph, NeighborhoodEstimation(), config, engine_config)
        estimates = estimate_neighborhood_sizes(result.vertex_values, config)
        # The chain's source (vertex 0) reaches nothing; late vertices reach
        # everything upstream of them -- estimates must reflect that ordering.
        assert estimates[29] > estimates[0]

    def test_converges_by_fixed_point(self, engine, small_scale_free_graph, engine_config):
        config = NeighborhoodConfig(max_hops=50)
        result = engine.run(small_scale_free_graph, NeighborhoodEstimation(), config, engine_config)
        assert result.converged

    def test_activity_shrinks(self, engine, small_scale_free_graph, engine_config):
        config = NeighborhoodConfig(max_hops=50)
        result = engine.run(small_scale_free_graph, NeighborhoodEstimation(), config, engine_config)
        active = [p.active_vertices for p in result.iterations]
        assert active[-1] < active[0]

    def test_hop_budget_respected(self, engine, engine_config):
        graph = generators.chain(40)
        config = NeighborhoodConfig(max_hops=3)
        result = engine.run(graph, NeighborhoodEstimation(), config, engine_config)
        assert result.num_iterations <= 3 + 2

    def test_config_validation(self):
        algorithm = NeighborhoodEstimation()
        with pytest.raises(ConfigurationError):
            algorithm.validate_config(NeighborhoodConfig(num_sketches=0))
        with pytest.raises(ConfigurationError):
            algorithm.validate_config(NeighborhoodConfig(tolerance=2.0))


class TestRegistry:
    def test_all_algorithms_registered(self):
        names = available_algorithms()
        assert set(names) == {
            "pagerank", "semi-clustering", "topk-ranking",
            "connected-components", "neighborhood-estimation",
        }

    def test_lookup_by_name_and_alias(self):
        assert algorithm_by_name("pagerank").name == "pagerank"
        assert algorithm_by_name("PR").name == "pagerank"
        assert algorithm_by_name("top-k").name == "topk-ranking"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            algorithm_by_name("kmeans")

    def test_register_custom_algorithm(self):
        from repro.algorithms.base import IterativeAlgorithm

        class Custom(IterativeAlgorithm):
            name = "custom-test-algorithm"

        register_algorithm(Custom)
        assert algorithm_by_name("custom-test-algorithm").name == "custom-test-algorithm"

    def test_register_rejects_non_algorithm(self):
        with pytest.raises(ConfigurationError):
            register_algorithm(dict)
