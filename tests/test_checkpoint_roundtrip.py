"""Checkpoint snapshot/restore, disk persistence and resume semantics.

Pins the :mod:`repro.bsp.resilience` checkpoint format end to end: every
plane kind snapshots and restores losslessly (an interrupted run resumed
from disk finishes bit-identical to an undisturbed one), the on-disk layout
is crash-safe (atomic tmp + ``os.replace``; a failed write never leaves a
half-written checkpoint visible, and the manifest keeps pointing at the
last intact one), and a checkpoint refuses to resume under an incompatible
configuration (manifest config-hash check).

Plane-kind coverage rides the registry: ``pagerank`` -> scalar,
``neighborhood-estimation`` -> rows, ``topk-ranking`` -> ragged,
``semi-clustering`` -> cluster-rows (numeric) / object
(``semicluster_numeric=False``).
"""

from __future__ import annotations

import os
import pickle

import pytest

from test_differential_engine import algorithm_settings, assert_profiles_identical

from repro.algorithms.registry import algorithm_by_name
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.parallel.protocol import StreamCache
from repro.bsp.resilience import (
    EPOCH_VERSION_SHIFT,
    MANIFEST_NAME,
    Checkpoint,
    CheckpointManager,
)
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.exceptions import BSPError
from repro.graph import generators

#: (id, algorithm, engine-config overrides) -- one row per plane kind.
PLANE_KIND_MATRIX = [
    ("scalar", "pagerank", {}),
    ("rows", "neighborhood-estimation", {}),
    ("ragged", "topk-ranking", {}),
    ("cluster-rows", "semi-clustering", {}),
    ("object", "semi-clustering", {"semicluster_numeric": False}),
]


@pytest.fixture(scope="module")
def engine():
    eng = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )
    yield eng
    eng.close_pools()


@pytest.fixture(scope="module")
def graph():
    return generators.preferential_attachment(150, out_degree=4, seed=3).freeze()


def run_one(engine, graph, algorithm_name, **overrides):
    config, max_supersteps = algorithm_settings(algorithm_name)
    overrides.setdefault("max_supersteps", max_supersteps)
    overrides.setdefault("runtime_seed", 7)
    engine_config = EngineConfig(
        num_workers=5, collect_vertex_values=True, **overrides,
    )
    return engine.run(graph, algorithm_by_name(algorithm_name), config, engine_config)


# ------------------------------------------------------ resume (every kind)
@pytest.mark.parametrize(
    "kind,algorithm_name,overrides",
    PLANE_KIND_MATRIX,
    ids=[row[0] for row in PLANE_KIND_MATRIX],
)
def test_interrupted_run_resumes_bit_identical(
    engine, graph, tmp_path, kind, algorithm_name, overrides
):
    """Cut a run short, resume from the on-disk checkpoint, compare exactly.

    The resumed result must equal the undisturbed run field for field --
    including the iterations *before* the checkpoint (they travel inside
    it) and the seeded runtime noise of the replayed tail (the checkpoint
    snapshots the RNG state).
    """
    baseline = run_one(engine, graph, algorithm_name, **overrides)
    run_one(
        engine, graph, algorithm_name,
        max_supersteps=4, checkpoint_every=2, checkpoint_dir=str(tmp_path),
        **overrides,
    )
    resumed = run_one(
        engine, graph, algorithm_name,
        checkpoint_every=2, checkpoint_dir=str(tmp_path), resume=True,
        **overrides,
    )
    assert_profiles_identical(baseline, resumed)


def test_checkpoint_from_inline_resumes_on_process_backend(
    engine, graph, tmp_path
):
    """The fingerprint excludes the backend: inline checkpoints resume
    sharded (and implicitly the reverse -- degradation resumes inline)."""
    baseline = run_one(engine, graph, "pagerank")
    run_one(
        engine, graph, "pagerank",
        max_supersteps=4, checkpoint_every=2, checkpoint_dir=str(tmp_path),
    )
    resumed = run_one(
        engine, graph, "pagerank",
        checkpoint_every=2, checkpoint_dir=str(tmp_path), resume=True,
        backend="process", processes=2,
    )
    assert_profiles_identical(baseline, resumed)


# ----------------------------------------------------------- rejection paths
def test_resume_rejects_config_hash_mismatch(engine, graph, tmp_path):
    run_one(
        engine, graph, "pagerank",
        max_supersteps=4, checkpoint_every=2, checkpoint_dir=str(tmp_path),
    )
    with pytest.raises(BSPError, match="config hash mismatch"):
        run_one(
            engine, graph, "pagerank",
            checkpoint_every=2, checkpoint_dir=str(tmp_path), resume=True,
            runtime_seed=8,  # different noise stream -> different run
        )


def test_resume_requires_checkpoint_dir(engine, graph):
    with pytest.raises(BSPError, match="checkpoint_dir"):
        run_one(engine, graph, "pagerank", checkpoint_every=2, resume=True)


def test_resume_requires_manifest(engine, graph, tmp_path):
    with pytest.raises(BSPError, match="no checkpoint manifest"):
        run_one(
            engine, graph, "pagerank",
            checkpoint_every=2, checkpoint_dir=str(tmp_path), resume=True,
        )


# ------------------------------------------------------------ disk format
def make_checkpoint(version: int, superstep: int, config_hash: str) -> Checkpoint:
    """A structurally valid checkpoint with an opaque toy plane snapshot."""
    return Checkpoint(
        version=version,
        superstep=superstep,
        kind="scalar",
        plane={"kind": "scalar", "superstep": superstep},
        aggregates={"sum": float(superstep)},
        rng_state={"state": superstep},
        iterations=[],
        convergence_history=[0.5 / (superstep + 1)],
        config_hash=config_hash,
    )


def disk_files(directory) -> set:
    return set(os.listdir(directory))


def test_store_prunes_older_checkpoints(tmp_path):
    manager = CheckpointManager(every=1, directory=str(tmp_path), config_hash="abcd")
    for version, superstep in ((1, 0), (2, 3), (3, 6)):
        manager.store(make_checkpoint(version, superstep, "abcd"))
    files = disk_files(tmp_path)
    assert MANIFEST_NAME in files
    checkpoint_files = {name for name in files if name.startswith("checkpoint-")}
    assert len(checkpoint_files) == 1  # older versions pruned
    assert manager.load_from_disk().superstep == 6


def test_atomic_write_crash_leaves_last_checkpoint_intact(tmp_path, monkeypatch):
    """``os.replace`` dying mid-store never corrupts what is on disk.

    The write order is checkpoint file first, manifest second, prune last;
    failing the replace at either step must leave the manifest pointing at
    an intact, loadable checkpoint and no half-written final-name files.
    """
    import repro.bsp.resilience as resilience

    manager = CheckpointManager(every=1, directory=str(tmp_path), config_hash="abcd")
    manager.store(make_checkpoint(1, 2, "abcd"))
    survivor_files = disk_files(tmp_path)

    real_replace = os.replace
    for fail_at in (1, 2):  # 1: the checkpoint blob, 2: the manifest
        calls = [0]

        def exploding_replace(src, dst, *, _fail_at=fail_at, _calls=calls):
            _calls[0] += 1
            if _calls[0] == _fail_at:
                raise OSError("disk full")
            return real_replace(src, dst)

        monkeypatch.setattr(resilience.os, "replace", exploding_replace)
        fresh = CheckpointManager(every=1, directory=str(tmp_path), config_hash="abcd")
        with pytest.raises(OSError, match="disk full"):
            fresh.store(make_checkpoint(2, 4, "abcd"))
        monkeypatch.setattr(resilience.os, "replace", real_replace)

        # Every final-name file is intact: the manifest parses, the
        # checkpoint it points to unpickles, and it is still version 1.
        final = {f for f in disk_files(tmp_path) if not f.startswith("tmp-")}
        assert survivor_files <= final | {f for f in survivor_files}
        recovered = CheckpointManager(
            every=1, directory=str(tmp_path), config_hash="abcd"
        ).load_from_disk()
        assert recovered.version == 1
        assert recovered.superstep == 2
        with open(tmp_path / manager._checkpoint_name(1), "rb") as fh:
            assert pickle.load(fh).superstep == 2


def test_latest_returns_independent_copies():
    """Repeated rewinds must not share mutable state between restores."""
    manager = CheckpointManager(every=1, config_hash="abcd")
    manager.store(make_checkpoint(1, 2, "abcd"))
    first = manager.latest()
    first.convergence_history.append(999.0)
    first.aggregates["sum"] = -1.0
    second = manager.latest()
    assert second.convergence_history == [0.5 / 3]
    assert second.aggregates == {"sum": 2.0}


def test_should_checkpoint_cadence():
    manager = CheckpointManager(every=3)
    assert manager.enabled
    assert [s for s in range(10) if manager.should_checkpoint(s)] == [3, 6, 9]
    disabled = CheckpointManager(every=0)
    assert not disabled.enabled
    assert not any(disabled.should_checkpoint(s) for s in range(10))


# ----------------------------------------------------- epoch-cache versioning
def test_checkpoint_version_partitions_epoch_space():
    cp = make_checkpoint(5, 10, "abcd")
    assert cp.epoch_base == 5 << EPOCH_VERSION_SHIFT
    cache = StreamCache(epoch_base=cp.epoch_base)
    assert cache.epoch_counter == 5 << EPOCH_VERSION_SHIFT
    # Epochs minted after a rewind can never collide with pre-rewind ones:
    # each version owns a disjoint band of 2**EPOCH_VERSION_SHIFT epochs.
    earlier = StreamCache(epoch_base=make_checkpoint(4, 8, "x").epoch_base)
    for _ in range(1000):
        earlier.epoch_counter += 1
    assert earlier.epoch_counter < cache.epoch_counter
