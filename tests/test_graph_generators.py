"""Unit tests for the synthetic graph generators."""

import pytest

from repro.exceptions import ConfigurationError
from repro.graph import generators
from repro.graph.properties import is_scale_free, largest_wcc_fraction


class TestPreferentialAttachment:
    def test_size_and_determinism(self):
        a = generators.preferential_attachment(300, out_degree=5, seed=1)
        b = generators.preferential_attachment(300, out_degree=5, seed=1)
        assert a.num_vertices == 300
        assert a.num_edges == b.num_edges
        assert a.num_edges > 300

    def test_different_seeds_differ(self):
        a = generators.preferential_attachment(300, out_degree=5, seed=1)
        b = generators.preferential_attachment(300, out_degree=5, seed=2)
        assert a.num_edges != b.num_edges or set(a.edges()) != set(b.edges())

    def test_heavy_tailed_degrees(self):
        graph = generators.preferential_attachment(1500, out_degree=6, seed=3)
        max_in = max(graph.in_degree_sequence())
        mean_in = sum(graph.in_degree_sequence()) / graph.num_vertices
        assert max_in > 10 * mean_in

    def test_is_scale_free(self):
        graph = generators.preferential_attachment(2000, out_degree=6, seed=4)
        assert is_scale_free(graph)

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ConfigurationError):
            generators.preferential_attachment(0)
        with pytest.raises(ConfigurationError):
            generators.preferential_attachment(10, out_degree=0)


class TestRmat:
    def test_vertex_count_is_power_of_two(self):
        graph = generators.rmat(scale=8, edge_factor=4, seed=5)
        assert graph.num_vertices == 256

    def test_edges_bounded_by_requested_factor(self):
        graph = generators.rmat(scale=8, edge_factor=4, seed=5)
        assert 0 < graph.num_edges <= 256 * 4

    def test_skewed_in_degree(self):
        graph = generators.rmat(scale=10, edge_factor=8, seed=6)
        degrees = sorted(graph.in_degree_sequence(), reverse=True)
        top_share = sum(degrees[: len(degrees) // 100 + 1]) / max(1, sum(degrees))
        assert top_share > 0.05

    def test_invalid_probabilities_raise(self):
        with pytest.raises(ConfigurationError):
            generators.rmat(scale=4, a=0.6, b=0.3, c=0.3)
        with pytest.raises(ConfigurationError):
            generators.rmat(scale=0)


class TestOtherGenerators:
    def test_copying_model_size(self):
        graph = generators.copying_model(400, out_degree=5, seed=7)
        assert graph.num_vertices == 400
        assert graph.num_edges > 400

    def test_copying_model_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            generators.copying_model(100, copy_probability=1.5)

    def test_lognormal_not_scale_free(self):
        graph = generators.lognormal_digraph(1200, mean_out_degree=8, seed=8)
        assert graph.num_vertices == 1200
        assert not is_scale_free(graph)

    def test_lognormal_reciprocity_creates_back_edges(self):
        graph = generators.lognormal_digraph(200, mean_out_degree=5, reciprocity=1.0, seed=9)
        back = sum(1 for s, t, _ in graph.edges() if graph.has_edge(t, s))
        assert back > graph.num_edges * 0.5

    def test_erdos_renyi_sparse(self):
        graph = generators.erdos_renyi(200, 0.01, seed=10)
        assert graph.num_vertices == 200

    def test_erdos_renyi_dense_path(self):
        graph = generators.erdos_renyi(30, 0.5, seed=11)
        expected = 0.5 * 30 * 29
        assert abs(graph.num_edges - expected) < expected * 0.5

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            generators.erdos_renyi(10, 1.5)

    def test_chain_structure(self):
        graph = generators.chain(10)
        assert graph.num_vertices == 10
        assert graph.num_edges == 9
        assert graph.out_degree(9) == 0

    def test_star_structure(self):
        graph = generators.star(5)
        assert graph.num_vertices == 6
        assert graph.out_degree(0) == 5

    def test_complete_graph(self):
        graph = generators.complete(5)
        assert graph.num_edges == 20

    def test_two_level_hierarchy_connected(self):
        graph = generators.two_level_hierarchy(4, 15, seed=12)
        assert graph.num_vertices == 60
        assert largest_wcc_fraction(graph) > 0.9
