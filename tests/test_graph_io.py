"""Unit tests for edge-list I/O."""

import gzip

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.digraph import DiGraph
from repro.graph.io import read_edge_list, write_edge_list


@pytest.fixture()
def sample_graph():
    graph = DiGraph(name="io-sample")
    graph.add_edge(0, 1, 2.0)
    graph.add_edge(1, 2)
    graph.add_edge(2, 0)
    return graph


class TestRoundTrip:
    def test_write_then_read(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == sample_graph.num_vertices
        assert loaded.num_edges == sample_graph.num_edges
        assert loaded.has_edge(0, 1)

    def test_round_trip_with_weights(self, sample_graph, tmp_path):
        path = tmp_path / "weighted.txt"
        write_edge_list(sample_graph, path, write_weights=True)
        loaded = read_edge_list(path)
        weights = {(s, t): w for s, t, w in loaded.edges()}
        assert weights[(0, 1)] == pytest.approx(2.0)

    def test_gzip_round_trip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt.gz"
        write_edge_list(sample_graph, path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("#")
        loaded = read_edge_list(path)
        assert loaded.num_edges == sample_graph.num_edges

    def test_creates_parent_directories(self, sample_graph, tmp_path):
        path = tmp_path / "nested" / "dir" / "graph.txt"
        write_edge_list(sample_graph, path)
        assert path.exists()


class TestReadEdgeCases:
    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_non_integer_ids_raise_when_as_int(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path, as_int=True)

    def test_string_ids_supported(self, tmp_path):
        path = tmp_path / "str.txt"
        path.write_text("a b\nb c\n")
        graph = read_edge_list(path, as_int=False)
        assert graph.has_edge("a", "b")

    def test_bad_weight_raises(self, tmp_path):
        path = tmp_path / "badweight.txt"
        path.write_text("0 1 notaweight\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_deduplicate_option(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1\n0 1\n")
        graph = read_edge_list(path, deduplicate=True)
        assert graph.num_edges == 1

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path)
        assert graph.name == "mygraph"


class TestCommentCharRoundTrip:
    """Regression: ``write_edge_list`` always emits ``# graph:`` / ``#
    vertices:`` headers, so reading its output back with a non-default
    ``comment`` character used to raise ``GraphFormatError`` on our own
    header.  The reader must skip its own headers regardless of ``comment``.
    """

    @pytest.mark.parametrize("comment", ["#", ";", "%", "//"])
    @pytest.mark.parametrize("suffix", [".txt", ".txt.gz"])
    @pytest.mark.parametrize("write_weights", [False, True])
    def test_round_trip_all_comment_chars(
        self, sample_graph, tmp_path, comment, suffix, write_weights
    ):
        path = tmp_path / f"graph{suffix}"
        write_edge_list(sample_graph, path, write_weights=write_weights)
        loaded = read_edge_list(path, comment=comment)
        assert loaded.num_vertices == sample_graph.num_vertices
        assert loaded.num_edges == sample_graph.num_edges
        if write_weights:
            weights = {(s, t): w for s, t, w in loaded.edges()}
            assert weights[(0, 1)] == pytest.approx(2.0)

    def test_custom_comment_char_still_skips_its_lines(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("; a comment\n# graph: x\n# vertices: 2 edges: 1\n0 1\n")
        graph = read_edge_list(path, comment=";")
        assert graph.num_edges == 1

    def test_default_comment_unaffected(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path)
        assert read_edge_list(path).num_edges == sample_graph.num_edges
