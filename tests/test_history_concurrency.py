"""HistoryStore persistence and concurrency.

The prediction daemon records history from executor threads while ``status``
reads, and several daemons (or a daemon plus a CLI) may share one history
file.  These tests pin the store's contract:

* serialisation round-trips (``HistoricalRun.to_dict``/``from_dict``, the
  versioned JSON file format);
* every write is atomic -- a reader never observes a half-written file;
* concurrent appends from threads *and* processes are load-modify-write
  cycles under the file lock: no recorded run is ever dropped.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.core.history import HistoricalRun, HistoryStore
from repro.exceptions import HistoryError


@pytest.fixture(scope="module")
def run(engine_module, small_scale_free_graph, engine_config_module):
    return engine_module.run(
        small_scale_free_graph, PageRank(), PageRankConfig(tolerance=1e-6),
        engine_config_module,
    )


@pytest.fixture(scope="module")
def engine_module(test_cluster, deterministic_profile):
    from repro.bsp.engine import BSPEngine

    return BSPEngine(cluster=test_cluster, cost_profile=deterministic_profile)


@pytest.fixture(scope="module")
def engine_config_module():
    from repro.bsp.engine import EngineConfig

    return EngineConfig(num_workers=4, max_supersteps=100, runtime_seed=3)


# ---------------------------------------------------------------- roundtrips
def test_historical_run_dict_roundtrip(run):
    record = HistoryStore().record(run, dataset="roundtrip")
    rebuilt = HistoricalRun.from_dict(record.to_dict())
    assert rebuilt == record


def test_from_dict_rejects_malformed_payloads():
    with pytest.raises(HistoryError, match="malformed"):
        HistoricalRun.from_dict({"algorithm": "pagerank"})


def test_store_persists_and_reloads(tmp_path, run):
    path = str(tmp_path / "history.json")
    store = HistoryStore(path=path)
    store.record(run, dataset="a")
    store.record(run, dataset="b")

    fresh = HistoryStore(path=path)  # a new daemon reads the same file
    assert len(fresh) == 2
    assert fresh.datasets("pagerank") == ["a", "b"]
    assert fresh.runs()[0].table.rows == store.runs()[0].table.rows


def test_file_is_versioned_and_never_half_written(tmp_path, run):
    path = tmp_path / "history.json"
    store = HistoryStore(path=str(path))
    store.record(run, dataset="a")
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert len(payload["runs"]) == 1
    # No temp files left behind by the atomic replace.
    stray = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert not stray


def test_unsupported_version_raises(tmp_path):
    path = tmp_path / "history.json"
    path.write_text(json.dumps({"version": 999, "runs": []}))
    with pytest.raises(HistoryError, match="unsupported format"):
        HistoryStore(path=str(path))


def test_clear_empties_the_file(tmp_path, run):
    path = tmp_path / "history.json"
    store = HistoryStore(path=str(path))
    store.record(run, dataset="a")
    store.clear()
    assert len(store) == 0
    assert json.loads(path.read_text())["runs"] == []


# --------------------------------------------------------------- concurrency
def test_concurrent_thread_appends_drop_nothing(tmp_path, run):
    path = str(tmp_path / "history.json")
    store = HistoryStore(path=path)

    def append(tid):
        for i in range(5):
            store.record(run, dataset=f"t{tid}-r{i}")

    threads = [threading.Thread(target=append, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(store) == 20
    assert len(HistoryStore(path=path)) == 20  # the file agrees


def _process_appender(path, pid, run_payload):
    """Worker of the cross-process test (module-level for pickling)."""
    run = HistoricalRun.from_dict(run_payload)
    store = HistoryStore(path=path)
    for i in range(4):
        # record() wants a RunResult; write through the same locked
        # load-modify-write path by appending a pre-built record.
        with store._lock, store._file_lock():
            merged = store._read_file()
            merged.append(
                HistoricalRun.from_dict(
                    {**run_payload, "dataset": f"p{pid}-r{i}"}
                )
            )
            store._write_file(merged)


def test_concurrent_process_appends_drop_nothing(tmp_path, run):
    """Two daemons sharing one history file: the flock'd load-modify-write
    keeps every append from every process."""
    path = str(tmp_path / "history.json")
    payload = HistoryStore().record(run, dataset="seed").to_dict()
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(target=_process_appender, args=(path, pid, payload))
        for pid in range(3)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    store = HistoryStore(path=path)
    assert len(store) == 12
    datasets = {r.dataset for r in store.runs()}
    assert datasets == {f"p{pid}-r{i}" for pid in range(3) for i in range(4)}


def test_record_merges_rows_written_by_another_writer(tmp_path, run):
    """A stale in-memory view must not clobber rows another process wrote:
    record() re-reads the file under the lock before appending."""
    path = str(tmp_path / "history.json")
    ours = HistoryStore(path=path)
    ours.record(run, dataset="ours-1")

    theirs = HistoryStore(path=path)
    theirs.record(run, dataset="theirs-1")

    ours.record(run, dataset="ours-2")  # must keep "theirs-1"
    assert set(HistoryStore(path=path).datasets("pagerank")) == {
        "ours-1", "theirs-1", "ours-2",
    }
