"""Out-of-core ingestion: chunked parser, on-disk CSR cache, memmap loading.

The ingester (:mod:`repro.graph.ingest`) promises to build *the same graph*
as the in-memory reader (:func:`repro.graph.io.read_edge_list`) while never
materialising the edge list in RAM.  "Same graph" is semantic, not bitwise:
``read_edge_list`` assigns CSR indices by first appearance while the ingester
uses the dense-id contract (index == id), so equivalence is checked on the
per-vertex adjacency (target ids and weights, in file order) rather than on
raw arrays.  The satellite regressions for the dataset LRU cache and the
repartition-cache weakref live here too, next to the memmap machinery they
protect.
"""

from __future__ import annotations

import gc
import gzip
import json
import weakref

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, GraphError, GraphFormatError
from repro.graph import datasets
from repro.graph.csr import CSRGraph
from repro.graph.ingest import (
    cache_digest,
    ingest_edge_list,
    ingest_or_load,
    load_csr_cache,
    save_csr_cache,
)
from repro.graph.io import read_edge_list
from repro.graph.partition import ContiguousPartitioner, HashPartitioner


# ------------------------------------------------------------------ helpers
def adjacency(graph):
    """``id -> [(target_id, weight), ...]`` in stored (file) order."""
    ids = list(graph.ids)
    indptr = np.asarray(graph.indptr)
    targets = np.asarray(graph.targets)
    weights = np.asarray(graph.weights)
    return {
        source: [
            (ids[int(t)], float(w))
            for t, w in zip(
                targets[indptr[i]:indptr[i + 1]], weights[indptr[i]:indptr[i + 1]]
            )
        ]
        for i, source in enumerate(ids)
    }


def make_corpus(seed, num_vertices=60, num_lines=500, weighted=False):
    """A messy seeded edge-list body: comments, blanks, dups, self-loops."""
    rng = np.random.default_rng(seed)
    lines = ["# generated corpus", ""]
    for i in range(num_lines):
        source = int(rng.integers(num_vertices))
        target = int(rng.integers(num_vertices))
        if weighted:
            lines.append(f"{source} {target} {float(rng.uniform(0.1, 9.0)):.4f}")
        else:
            lines.append(f"{source} {target}")
        if i % 97 == 0:
            lines.append("")
        if i % 131 == 0:
            lines.append("# interior comment")
    lines.append(f"{num_vertices - 1} {num_vertices - 1}")  # self-loop
    return "\n".join(lines) + "\n"


def assert_equivalent(cache_path, reference):
    ingested = load_csr_cache(cache_path)
    ref = reference.freeze()
    assert ingested.num_edges == ref.num_edges
    ingested_adj = adjacency(ingested)
    for vertex, edges in adjacency(ref).items():
        assert ingested_adj[vertex] == edges
    return ingested


# ------------------------------------------------------- ingester equivalence
class TestIngesterEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_matches_read_edge_list(self, tmp_path, seed, weighted):
        path = tmp_path / "corpus.txt"
        path.write_text(make_corpus(seed, weighted=weighted))
        cache = ingest_edge_list(path, tmp_path / "cache")
        assert_equivalent(cache, read_edge_list(path))

    @pytest.mark.parametrize("options", [
        dict(deduplicate=True),
        dict(allow_self_loops=True),
        dict(deduplicate=True, allow_self_loops=True),
    ])
    def test_option_combinations(self, tmp_path, options):
        path = tmp_path / "corpus.txt"
        path.write_text(make_corpus(3, weighted=True))
        cache = ingest_edge_list(path, tmp_path / "cache", **options)
        assert_equivalent(cache, read_edge_list(path, **options))

    def test_tiny_chunks_force_carry_handling(self, tmp_path):
        """A chunk size smaller than one line exercises the carry buffer."""
        path = tmp_path / "corpus.txt"
        path.write_text(make_corpus(4))
        cache = ingest_edge_list(path, tmp_path / "cache", chunk_bytes=16)
        assert_equivalent(cache, read_edge_list(path))

    def test_tiny_buckets_force_external_sort(self, tmp_path):
        """A bucket budget far below the spill size exercises pass B."""
        path = tmp_path / "corpus.txt"
        path.write_text(make_corpus(5, num_lines=2000))
        cache = ingest_edge_list(
            path, tmp_path / "cache", deduplicate=True, bucket_bytes=1024
        )
        assert_equivalent(cache, read_edge_list(path, deduplicate=True))

    def test_gzip_input(self, tmp_path):
        body = make_corpus(6, weighted=True).encode()
        plain = tmp_path / "corpus.txt"
        plain.write_bytes(body)
        zipped = tmp_path / "corpus.txt.gz"
        with gzip.open(zipped, "wb") as handle:
            handle.write(body)
        cache = ingest_edge_list(zipped, tmp_path / "cache")
        assert_equivalent(cache, read_edge_list(plain))

    def test_custom_comment_char(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("; comment\n# graph: x\n0 1\n1 2\n")
        cache = ingest_edge_list(path, tmp_path / "cache", comment=";")
        graph = load_csr_cache(cache)
        assert graph.num_edges == 2

    def test_dense_id_contract(self, tmp_path):
        """Vertices never mentioned still exist: index == id, 0..max_id."""
        path = tmp_path / "sparse.txt"
        path.write_text("0 9\n")
        graph = load_csr_cache(ingest_edge_list(path, tmp_path / "cache"))
        assert graph.num_vertices == 10
        assert list(graph.ids) == list(range(10))
        assert isinstance(graph.ids, range)


# --------------------------------------------------------------- cache layer
class TestCsrCache:
    def test_digest_is_stable_and_option_sensitive(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        assert cache_digest(path) == cache_digest(path)
        assert cache_digest(path) != cache_digest(path, deduplicate=True)
        assert cache_digest(path) != cache_digest(path, comment=";")

    def test_second_ingest_is_a_cache_hit(self, tmp_path, monkeypatch):
        path = tmp_path / "g.txt"
        path.write_text(make_corpus(7))
        first = ingest_edge_list(path, tmp_path / "cache")
        # A hit never re-parses: poison the parser to prove it is not called.
        from repro.graph import ingest as ingest_module

        def exploding_ingest(*args, **kwargs):  # pragma: no cover
            raise AssertionError("cache hit must not re-ingest")

        monkeypatch.setattr(ingest_module, "_ingest_into", exploding_ingest)
        assert ingest_edge_list(path, tmp_path / "cache") == first

    def test_force_reingests(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        cache = ingest_edge_list(path, tmp_path / "cache")
        marker = cache / "marker"
        marker.touch()
        ingest_edge_list(path, tmp_path / "cache", force=True)
        assert not marker.exists()

    def test_save_load_roundtrip_is_bit_identical(self, tmp_path):
        from repro.graph import generators

        frozen = generators.preferential_attachment(90, out_degree=4, seed=11).freeze()
        cache = save_csr_cache(frozen, tmp_path / "pa")
        for mmap_mode in ("r", None):
            loaded = load_csr_cache(cache, mmap_mode=mmap_mode)
            assert loaded.mmap_backed == (mmap_mode is not None)
            assert list(loaded.ids) == list(frozen.ids)
            assert np.array_equal(np.asarray(loaded.indptr), frozen.indptr)
            assert np.array_equal(np.asarray(loaded.targets), frozen.targets)
            assert np.array_equal(np.asarray(loaded.weights), frozen.weights)

    def test_memmap_load_does_not_copy(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(make_corpus(8))
        graph = load_csr_cache(ingest_edge_list(path, tmp_path / "cache"))

        def memmap_backed(array):
            while isinstance(array, np.ndarray):
                if isinstance(array, np.memmap):
                    return True
                if array.base is None:
                    return False
                array = array.base
            return False

        assert memmap_backed(graph.targets)
        assert memmap_backed(graph.indptr)
        assert not graph.targets.flags.owndata

    def test_ingest_or_load_returns_memmap_graph(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n")
        graph = ingest_or_load(path, tmp_path / "cache")
        assert graph.mmap_backed
        assert graph.num_edges == 2

    def test_meta_json_records_stats(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n2 2\n")
        cache = ingest_edge_list(path, tmp_path / "cache", deduplicate=True)
        meta = json.loads((cache / "meta.json").read_text())
        assert meta["num_edges"] == 1
        assert meta["stats"]["duplicates_dropped"] == 1
        assert meta["stats"]["self_loops_dropped"] == 1


# -------------------------------------------------------------- error paths
class TestIngestErrors:
    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n\n# ok\njunk\n")
        with pytest.raises(GraphFormatError, match=r"bad\.txt:4"):
            ingest_edge_list(path, tmp_path / "cache")

    def test_non_integer_id_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\na b\n")
        with pytest.raises(GraphFormatError, match=r"bad\.txt:2"):
            ingest_edge_list(path, tmp_path / "cache")

    def test_bad_weight_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 1.5\n1 2 soup\n")
        with pytest.raises(GraphFormatError, match=r"bad\.txt:2"):
            ingest_edge_list(path, tmp_path / "cache")

    def test_negative_id_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 -1\n")
        with pytest.raises(GraphFormatError):
            ingest_edge_list(path, tmp_path / "cache")

    def test_empty_edge_list_matches_reader(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        graph = load_csr_cache(ingest_edge_list(path, tmp_path / "cache"))
        reference = read_edge_list(path)
        assert graph.num_vertices == reference.num_vertices == 0
        assert graph.num_edges == reference.num_edges == 0

    def test_partitioner_requires_num_workers(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError):
            ingest_edge_list(path, tmp_path / "cache", partitioner="ldg")

    def test_failed_ingest_leaves_no_partial_cache(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\njunk\n")
        with pytest.raises(GraphFormatError):
            ingest_edge_list(path, tmp_path / "cache")
        cache_root = tmp_path / "cache"
        leftovers = list(cache_root.glob("*")) if cache_root.exists() else []
        assert not leftovers


# ------------------------------------------------------ partition-at-ingest
class TestPartitionAtIngest:
    def test_ldg_at_ingest_lands_partition_contiguous(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(make_corpus(9, num_vertices=80, num_lines=800))
        cache = ingest_edge_list(
            path, tmp_path / "cache", deduplicate=True,
            partitioner="ldg", num_workers=4,
        )
        graph = load_csr_cache(cache)
        assert graph.ingest_partition is not None
        assert graph.ingest_partition["partitioner"] == "ldg"
        offsets = np.asarray(graph.ingest_partition["offsets"])
        assert offsets[0] == 0 and offsets[-1] == graph.num_vertices
        assert np.all(np.diff(offsets) >= 0)

    def test_contiguous_partitioner_makes_repartition_a_noop(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(make_corpus(10, num_vertices=64, num_lines=700))
        cache = ingest_edge_list(
            path, tmp_path / "cache", deduplicate=True,
            partitioner="ldg", num_workers=4,
        )
        graph = load_csr_cache(cache)
        partitioning = ContiguousPartitioner().partition(graph, 4)
        # The ingest-time offsets are honoured verbatim...
        assert np.array_equal(
            np.asarray(partitioning.layout().offsets),
            np.asarray(graph.ingest_partition["offsets"]),
        )
        # ...and the layout is the identity, so repartitioning never copies
        # the edge arrays: the "relabelled" graph aliases the memmap.
        assert partitioning.layout().is_identity
        relabelled = graph.repartition(partitioning)
        assert np.shares_memory(
            np.asarray(relabelled.targets), np.asarray(graph.targets)
        )

    def test_contiguous_partitioner_balances_edges_without_metadata(self):
        from repro.graph import generators

        graph = generators.preferential_attachment(200, out_degree=4, seed=5).freeze()
        partitioning = ContiguousPartitioner().partition(graph, 4)
        layout = partitioning.layout()
        assert layout.is_identity
        offsets = np.asarray(layout.offsets)
        indptr = np.asarray(graph.indptr)
        per_worker_edges = np.diff(indptr[offsets])
        # Contiguous blocks chosen by cumulative degree: no worker holds more
        # than ~half the edges (a vertex-count split would be far worse on a
        # scale-free graph where early vertices dominate).
        assert per_worker_edges.max() <= graph.num_edges * 0.55


# ------------------------------------------------- satellite 1: dataset LRU
class TestDatasetCacheLRU:
    def test_cache_is_bounded_and_releases_evicted_graphs(self):
        datasets.clear_cache()
        previous = datasets.set_cache_limit(2)
        try:
            first = datasets.load_dataset("livejournal", scale=0.05, seed=1)
            ref = weakref.ref(first)
            datasets.load_dataset("wikipedia", scale=0.05, seed=1)
            datasets.load_dataset("uk-2002", scale=0.05, seed=1)
            assert len(datasets._CACHE) <= 2
            del first
            gc.collect()
            # Regression: the unbounded dict used to pin every generated
            # graph forever; the evicted entry must now actually be freed.
            assert ref() is None
        finally:
            datasets.set_cache_limit(previous)
            datasets.clear_cache()

    def test_lru_keeps_recently_used(self):
        datasets.clear_cache()
        previous = datasets.set_cache_limit(2)
        try:
            a = datasets.load_dataset("livejournal", scale=0.05, seed=2)
            datasets.load_dataset("wikipedia", scale=0.05, seed=2)
            # Touch the oldest entry, then insert a third: the middle one
            # (wikipedia) is now the LRU victim.
            assert datasets.load_dataset("livejournal", scale=0.05, seed=2) is a
            datasets.load_dataset("uk-2002", scale=0.05, seed=2)
            keys = {key[0] for key in datasets._CACHE}
            assert keys == {"livejournal", "uk-2002"}
        finally:
            datasets.set_cache_limit(previous)
            datasets.clear_cache()

    def test_cache_limit_validation(self):
        with pytest.raises(ConfigurationError):
            datasets.set_cache_limit(0)

    def test_csr_cache_dir_serves_memmap_dataset(self, tmp_path):
        graph = datasets.load_dataset(
            "livejournal", scale=0.05, seed=3, csr_cache_dir=tmp_path
        )
        assert isinstance(graph, CSRGraph)
        assert graph.mmap_backed
        again = datasets.load_dataset(
            "livejournal", scale=0.05, seed=3, csr_cache_dir=tmp_path
        )
        assert again.num_edges == graph.num_edges
        # Served from disk, not from the in-process instance cache.
        assert ("livejournal", 0.05, 3) not in datasets._CACHE


# -------------------------------------- satellite 2: repartition cache pin
class TestRepartitionCachePinning:
    def _mmap_graph(self, tmp_path):
        from repro.graph import generators

        frozen = generators.preferential_attachment(120, out_degree=4, seed=7).freeze()
        cache = save_csr_cache(frozen, tmp_path / "pa")
        return load_csr_cache(cache, mmap_mode="r")

    def test_mmap_graph_does_not_pin_relabelled_copy(self, tmp_path):
        """Regression: the cache used to hold a strong reference, so a
        memmap-backed graph silently pinned a full materialised relabelling
        in RAM -- double the footprint the memmap path exists to avoid."""
        graph = self._mmap_graph(tmp_path)
        partitioning = HashPartitioner().partition(graph, 4)
        relabelled = graph.repartition(partitioning)
        assert not np.shares_memory(
            np.asarray(relabelled.targets), np.asarray(graph.targets)
        )
        ref = weakref.ref(relabelled)
        cache_key = (partitioning.num_workers, partitioning.workers.tobytes())
        assert graph._cached_repartition(cache_key) is relabelled
        del relabelled
        gc.collect()
        assert ref() is None
        assert graph._cached_repartition(cache_key) is None

    def test_ram_graph_keeps_strong_cache(self, tmp_path):
        graph = self._mmap_graph(tmp_path)
        ram = load_csr_cache(tmp_path / "pa", mmap_mode=None)
        partitioning = HashPartitioner().partition(ram, 4)
        first = ram.repartition(partitioning)
        assert ram.repartition(partitioning) is first

    def test_invalidate_repartition_cache(self, tmp_path):
        graph = self._mmap_graph(tmp_path)
        ram = load_csr_cache(tmp_path / "pa", mmap_mode=None)
        partitioning = HashPartitioner().partition(ram, 4)
        first = ram.repartition(partitioning)
        ram.invalidate_repartition_cache()
        assert ram.repartition(partitioning) is not first
