"""Shared fixtures: small deterministic graphs, engines and configurations.

The unit-test suite never uses the full-size stand-in datasets; everything
runs on graphs of a few hundred vertices so the whole suite stays fast while
still exercising every code path (sampling, BSP execution, regression,
end-to-end prediction).
"""

from __future__ import annotations

import pytest

from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.graph import generators
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="session")
def small_scale_free_graph() -> DiGraph:
    """A ~600-vertex scale-free graph (preferential attachment)."""
    return generators.preferential_attachment(600, out_degree=6, seed=7, name="small-sf")


@pytest.fixture(scope="session")
def medium_scale_free_graph() -> DiGraph:
    """A ~1500-vertex scale-free graph for sampling / prediction tests."""
    return generators.preferential_attachment(1500, out_degree=7, seed=11, name="medium-sf")


@pytest.fixture(scope="session")
def community_graph() -> DiGraph:
    """A small community-structured graph for semi-clustering tests."""
    return generators.two_level_hierarchy(
        num_communities=6, community_size=20, intra_probability=0.35, seed=5, name="communities"
    )


@pytest.fixture()
def tiny_graph() -> DiGraph:
    """A hand-built 6-vertex graph with known structure."""
    graph = DiGraph(name="tiny")
    edges = [(0, 1), (0, 2), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
    graph.add_edges(edges)
    return graph


@pytest.fixture(scope="session")
def deterministic_profile() -> CostProfile:
    """Ground-truth cost profile with no noise and no congestion."""
    return CostProfile(noise_std=0.0, congestion_factor=0.0)


@pytest.fixture(scope="session")
def test_cluster() -> ClusterSpec:
    """A small cluster spec (4 workers) used by engine tests."""
    return ClusterSpec(num_nodes=1, workers_per_node=5, worker_memory_bytes=1024**3)


@pytest.fixture()
def engine(test_cluster, deterministic_profile) -> BSPEngine:
    """A deterministic BSP engine over the small test cluster."""
    return BSPEngine(cluster=test_cluster, cost_profile=deterministic_profile)


@pytest.fixture()
def engine_config() -> EngineConfig:
    """Engine configuration used by most execution tests (4 workers)."""
    return EngineConfig(num_workers=4, max_supersteps=100, runtime_seed=3)
