"""Property-based tests (hypothesis) on the core data structures and invariants.

These cover the invariants the rest of the system silently relies on:

* graph bookkeeping (degree sums, subgraph closure, undirected symmetry),
* the frozen CSR graph (freeze round-trips, derivation commutativity,
  reverse involution, degree preservation under relabelling),
* the statistics helpers (R² of a perfect fit, D-statistic bounds),
* the regression (exact recovery of linear ground truth, scale equivariance),
* the extrapolator (linearity, identity at factor 1),
* the samplers (requested ratio met, sample is a subgraph),
* the transform functions (threshold scaling is exact and pure).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.extrapolation import Extrapolator, ScalingFactors
from repro.core.features import FeatureTable
from repro.core.regression import fit_linear_model
from repro.core.transform import THRESHOLD_SCALING_TRANSFORM
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.graph.digraph import DiGraph
from repro.graph import generators
from repro.sampling.random_jump import RandomJump
from repro.utils.stats import coefficient_of_determination, d_statistic, signed_relative_error

# A strategy producing small random edge lists over a bounded vertex universe.
edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30)),
    min_size=1,
    max_size=120,
)


def build_graph(edges) -> DiGraph:
    graph = DiGraph(name="hypothesis")
    for source, target in edges:
        graph.add_edge(source, target)
    return graph


class TestGraphInvariants:
    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_degree_sums_equal_edge_count(self, edges):
        graph = build_graph(edges)
        assert sum(graph.out_degree_sequence()) == graph.num_edges
        assert sum(graph.in_degree_sequence()) == graph.num_edges

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_undirected_copy_is_symmetric_and_doubled(self, edges):
        graph = build_graph(edges)
        undirected = graph.as_undirected()
        assert undirected.num_edges == 2 * graph.num_edges
        for source, target, _ in graph.edges():
            assert undirected.has_edge(source, target)
            assert undirected.has_edge(target, source)

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_reverse_is_involution_on_edge_multiset(self, edges):
        graph = build_graph(edges)
        double_reversed = graph.reverse().reverse()
        assert sorted((s, t) for s, t, _ in double_reversed.edges()) == sorted(
            (s, t) for s, t, _ in graph.edges()
        )

    @given(edge_lists, st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_subgraph_edges_are_subset(self, edges, cutoff):
        graph = build_graph(edges)
        keep = [v for v in graph.vertices() if v <= cutoff]
        sub = graph.subgraph(keep)
        assert sub.num_edges <= graph.num_edges
        for source, target, _ in sub.edges():
            assert source <= cutoff and target <= cutoff
            assert graph.has_edge(source, target)


class TestCSRGraphInvariants:
    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_freeze_round_trips_structure(self, edges):
        graph = build_graph(edges)
        frozen = graph.freeze()
        assert list(frozen.vertices()) == list(graph.vertices())
        assert list(frozen.edges()) == list(graph.edges())
        assert frozen.out_degree_sequence() == graph.out_degree_sequence()
        assert frozen.in_degree_sequence() == graph.in_degree_sequence()
        thawed = frozen.to_digraph()
        assert list(thawed.edges()) == list(graph.edges())

    @given(edge_lists, st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_subgraph_commutes_with_freeze(self, edges, cutoff):
        graph = build_graph(edges)
        keep = [v for v in graph.vertices() if v <= cutoff]
        freeze_then_sub = graph.freeze().subgraph(keep)
        sub_then_freeze = graph.subgraph(keep).freeze()
        assert list(freeze_then_sub.vertices()) == list(sub_then_freeze.vertices())
        assert list(freeze_then_sub.edges()) == list(sub_then_freeze.edges())

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_reverse_is_involution_on_csr(self, edges):
        frozen = build_graph(edges).freeze()
        double_reversed = frozen.reverse().reverse()
        assert list(double_reversed.vertices()) == list(frozen.vertices())
        assert sorted((s, t) for s, t, _ in double_reversed.edges()) == sorted(
            (s, t) for s, t, _ in frozen.edges()
        )

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_as_undirected_matches_digraph_exactly(self, edges):
        graph = build_graph(edges)
        assert list(graph.freeze().as_undirected().edges()) == list(
            graph.as_undirected().edges()
        )

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_relabelling_preserves_degree_sequences(self, edges):
        frozen = build_graph(edges).freeze()
        relabelled, mapping = frozen.relabel_to_integers()
        assert relabelled.out_degree_sequence() == frozen.out_degree_sequence()
        assert relabelled.in_degree_sequence() == frozen.in_degree_sequence()
        assert sorted(mapping.values()) == list(range(frozen.num_vertices))


class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_r_squared_of_perfect_prediction_is_one(self, values):
        assert coefficient_of_determination(values, values) == 1.0

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_d_statistic_in_unit_interval_and_symmetric(self, a, b):
        forward = d_statistic(a, b)
        backward = d_statistic(b, a)
        assert 0.0 <= forward <= 1.0
        assert forward == backward

    @given(st.floats(min_value=0.1, max_value=1e6), st.floats(min_value=0.1, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_signed_relative_error_sign_convention(self, predicted, actual):
        error = signed_relative_error(predicted, actual)
        if predicted > actual:
            assert error > 0
        elif predicted < actual:
            assert error < 0
        else:
            assert error == 0.0


class TestRegressionProperties:
    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-5, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_linear_ground_truth_recovered(self, coef_a, coef_b, intercept, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(0, 100, size=(25, 2))
        response = coef_a * matrix[:, 0] + coef_b * matrix[:, 1] + intercept
        model = fit_linear_model(matrix, response, ["A", "B"])
        np.testing.assert_allclose(model.coefficient_dict()["A"], coef_a, atol=1e-6)
        np.testing.assert_allclose(model.coefficient_dict()["B"], coef_b, atol=1e-6)
        np.testing.assert_allclose(model.intercept, intercept, atol=1e-5)
        assert model.r_squared >= 0.999999 or np.allclose(response, response.mean())


class TestExtrapolatorProperties:
    feature_rows = st.dictionaries(
        st.sampled_from(["ActVert", "TotVert", "LocMsg", "RemMsg", "LocMsgSize", "RemMsgSize", "AvgMsgSize"]),
        st.floats(min_value=0, max_value=1e9),
        min_size=1,
        max_size=7,
    )

    @given(feature_rows)
    @settings(max_examples=100, deadline=None)
    def test_identity_factors_leave_rows_unchanged(self, row):
        extrapolator = Extrapolator(ScalingFactors(1.0, 1.0))
        assert extrapolator.extrapolate_row(row) == row

    @given(feature_rows, st.floats(min_value=1.0, max_value=100.0), st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_extrapolation_is_homogeneous(self, row, ev, ee):
        extrapolator = Extrapolator(ScalingFactors(ev, ee))
        scaled = extrapolator.extrapolate_row(row)
        for name, value in row.items():
            assert scaled[name] >= value  # factors are >= 1
            if value > 0 and name not in ("AvgMsgSize",):
                assert scaled[name] in (
                    value * ev,
                    value * ee,
                )

    @given(st.lists(feature_rows, min_size=0, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_rows_extrapolated_independently(self, rows):
        extrapolator = Extrapolator(ScalingFactors(2.0, 3.0))
        scaled = extrapolator.extrapolate_rows(rows)
        assert len(scaled) == len(rows)
        for original, row in zip(rows, scaled):
            assert extrapolator.extrapolate_row(original) == row


class TestSamplerProperties:
    @given(st.floats(min_value=0.05, max_value=0.5), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_jump_meets_requested_ratio(self, ratio, seed):
        graph = generators.preferential_attachment(200, out_degree=4, seed=3)
        result = RandomJump(seed=seed).sample(graph, ratio)
        assert result.num_vertices == max(1, int(round(200 * ratio)))
        assert set(result.vertices) <= set(graph.vertices())


class TestTransformProperties:
    @given(st.floats(min_value=1e-9, max_value=1e-2), st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_threshold_scaling_exact_and_pure(self, tolerance, ratio):
        config = PageRankConfig(tolerance=tolerance)
        scaled = THRESHOLD_SCALING_TRANSFORM(PageRank(), config, ratio)
        assert scaled.tolerance == tolerance / ratio
        assert config.tolerance == tolerance


class TestFeatureTableProperties:
    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=1e6), st.floats(min_value=0, max_value=1e6)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matrix_round_trips_rows(self, pairs):
        table = FeatureTable()
        for a, b in pairs:
            table.append({"ActVert": a, "RemMsg": b}, a + b)
        matrix = table.matrix(["ActVert", "RemMsg"])
        assert matrix.shape == (len(pairs), 2)
        for i, (a, b) in enumerate(pairs):
            assert matrix[i, 0] == a
            assert matrix[i, 1] == b
        assert list(table.response()) == [a + b for a, b in pairs]
