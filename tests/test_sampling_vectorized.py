"""Differential tests for the batched sampler walk (CSR vs. protocol path).

The walk-based samplers consume uniform draws from a block-refilled
:class:`repro.sampling.walkers.DrawStream` and, on frozen graphs, step
through the CSR adjacency arrays directly.  Both facts must be invisible to
a seeded run: the stream yields exactly the sequence sequential
``rng.random()`` calls would, and the CSR walk visits exactly the vertices
the protocol walk visits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.sampling import BiasedRandomJump, MetropolisHastingsRandomWalk, RandomJump
from repro.sampling.walkers import DrawStream
from repro.utils.rng import make_rng

WALK_SAMPLERS = [BiasedRandomJump, RandomJump, MetropolisHastingsRandomWalk]


@pytest.fixture(scope="module")
def walk_graph():
    return generators.preferential_attachment(500, out_degree=4, seed=13)


class TestDrawStream:
    def test_stream_matches_sequential_scalar_draws(self):
        blocked = DrawStream(make_rng(99), block=7)
        reference = make_rng(99)
        for _ in range(100):
            assert blocked.draw() == reference.random()

    def test_block_size_does_not_change_the_sequence(self):
        small = DrawStream(make_rng(5), block=3)
        large = DrawStream(make_rng(5), block=1024)
        assert [small.draw() for _ in range(50)] == [large.draw() for _ in range(50)]


class TestFrozenWalkEquivalence:
    @pytest.mark.parametrize("sampler_cls", WALK_SAMPLERS)
    @pytest.mark.parametrize("ratio", [0.05, 0.2])
    def test_same_sample_on_frozen_graph(self, sampler_cls, ratio, walk_graph):
        frozen = walk_graph.freeze()
        scalar = sampler_cls(seed=17).sample(walk_graph, ratio)
        vectorized = sampler_cls(seed=17).sample(frozen, ratio)
        assert scalar.vertices == vectorized.vertices
        assert scalar.seed_vertices == vectorized.seed_vertices
        assert scalar.num_walks == vectorized.num_walks
        assert scalar.num_steps == vectorized.num_steps

    def test_same_sample_with_dead_ends(self):
        # A star graph forces dead-end restarts (leaves have no out-edges).
        graph = generators.star(60)
        frozen = graph.freeze()
        scalar = BiasedRandomJump(seed=3).sample(graph, 0.5)
        vectorized = BiasedRandomJump(seed=3).sample(frozen, 0.5)
        assert scalar.vertices == vectorized.vertices
        assert scalar.num_walks == vectorized.num_walks

    def test_fallback_fill_matches_on_stuck_walks(self):
        # A chain with restart probability 1.0 restarts every step; the
        # uniform fallback fill must behave identically on both paths.
        graph = generators.chain(40)
        frozen = graph.freeze()
        scalar = RandomJump(restart_probability=1.0, seed=11).sample(graph, 0.9)
        vectorized = RandomJump(restart_probability=1.0, seed=11).sample(frozen, 0.9)
        assert scalar.vertices == vectorized.vertices


class TestBiasedSeedSelection:
    def test_frozen_seed_ranking_matches_scalar(self, walk_graph):
        sampler = BiasedRandomJump(seed_fraction=0.05, seed=1)
        assert sampler.select_seeds(walk_graph) == sampler.select_seeds(walk_graph.freeze())

    def test_frozen_seed_ranking_is_stable_on_ties(self):
        # Every vertex of a chain has out-degree 1 except the last; the
        # descending ranking must keep insertion order among the ties.
        graph = generators.chain(30)
        sampler = BiasedRandomJump(seed_fraction=0.3, seed=1)
        assert sampler.select_seeds(graph) == sampler.select_seeds(graph.freeze())


def test_walk_is_faster_on_frozen_graph(walk_graph):
    """Smoke guard: the CSR walk must not regress behind the protocol walk."""
    import time

    frozen = walk_graph.freeze()
    start = time.perf_counter()
    BiasedRandomJump(seed=2).sample(walk_graph, 0.5)
    scalar_time = time.perf_counter() - start
    start = time.perf_counter()
    BiasedRandomJump(seed=2).sample(frozen, 0.5)
    frozen_time = time.perf_counter() - start
    # Generous bound: identical work, cheaper per-step machinery.  This is a
    # smoke check, not a benchmark (see benchmarks/ for the recorded runs).
    assert frozen_time < scalar_time * 2.0
