"""Tests for the sample runner and the end-to-end predictor."""

import pytest

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.topk_ranking import TopKRanking, TopKRankingConfig
from repro.bsp.engine import EngineConfig
from repro.core.cost_model import CostModel
from repro.core.history import HistoryStore
from repro.core.predictor import DEFAULT_TRAINING_RATIOS, Predictor
from repro.core.sample_run import SampleRunner
from repro.core.transform import IDENTITY_TRANSFORM
from repro.exceptions import ConfigurationError
from repro.sampling.biased_random_jump import BiasedRandomJump
from repro.utils.stats import relative_error


@pytest.fixture()
def pagerank_config(medium_scale_free_graph):
    return PageRankConfig.for_tolerance_level(0.001, medium_scale_free_graph.num_vertices)


class TestSampleRunner:
    def test_sample_run_profile_fields(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        runner = SampleRunner(
            engine, PageRank(), sampler=BiasedRandomJump(seed=1), engine_config=engine_config
        )
        profile = runner.run(medium_scale_free_graph, pagerank_config, 0.1)
        assert profile.sampling_ratio == 0.1
        assert profile.num_iterations > 0
        assert profile.runtime > 0
        assert profile.factors.vertex_factor == pytest.approx(10.0, rel=0.05)
        assert profile.factors.edge_factor >= 1.0
        assert len(profile.feature_rows()) == profile.num_iterations
        assert len(profile.training_table()) == profile.num_iterations

    def test_transform_applied_to_sample_config(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        runner = SampleRunner(
            engine, PageRank(), sampler=BiasedRandomJump(seed=1), engine_config=engine_config
        )
        profile = runner.run(medium_scale_free_graph, pagerank_config, 0.1)
        assert profile.sample_config.tolerance == pytest.approx(pagerank_config.tolerance / 0.1)

    def test_default_sampler_is_brj_and_default_transform_used(self, engine, engine_config):
        runner = SampleRunner(engine, PageRank(), engine_config=engine_config)
        assert runner.sampler.name == "BRJ"
        assert runner.transform.name == "threshold-scaling"

    def test_identity_transform_override(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        runner = SampleRunner(
            engine, PageRank(), sampler=BiasedRandomJump(seed=1),
            transform=IDENTITY_TRANSFORM, engine_config=engine_config,
        )
        profile = runner.run(medium_scale_free_graph, pagerank_config, 0.1)
        assert profile.sample_config.tolerance == pagerank_config.tolerance

    def test_invalid_ratio_rejected(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        runner = SampleRunner(engine, PageRank(), engine_config=engine_config)
        with pytest.raises(ConfigurationError):
            runner.run(medium_scale_free_graph, pagerank_config, 0.0)

    def test_run_many(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        runner = SampleRunner(
            engine, PageRank(), sampler=BiasedRandomJump(seed=1), engine_config=engine_config
        )
        profiles = runner.run_many(medium_scale_free_graph, pagerank_config, [0.05, 0.1])
        assert [p.sampling_ratio for p in profiles] == [0.05, 0.1]


class TestPredictor:
    def make_predictor(self, engine, engine_config, history=None, ratios=(0.05, 0.1, 0.15)):
        return Predictor(
            engine,
            PageRank(),
            sampler=BiasedRandomJump(seed=2),
            history=history,
            training_ratios=ratios,
            engine_config=engine_config,
        )

    def test_prediction_structure(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        predictor = self.make_predictor(engine, engine_config)
        prediction = predictor.predict(medium_scale_free_graph, pagerank_config, sampling_ratio=0.1)
        assert prediction.predicted_iterations > 0
        assert len(prediction.predicted_iteration_runtimes) == prediction.predicted_iterations
        assert prediction.predicted_superstep_runtime == pytest.approx(
            sum(prediction.predicted_iteration_runtimes)
        )
        assert prediction.cost_model.is_trained
        assert prediction.training_observations >= 2
        assert not prediction.used_history
        assert prediction.vertex_scaling_factor > 1.0
        assert prediction.edge_scaling_factor > 1.0
        assert prediction.metadata["sampler"] == "BRJ"
        assert "predicted_superstep_runtime_s" in prediction.summary()

    def test_prediction_close_to_actual_runtime(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        actual = engine.run(medium_scale_free_graph, PageRank(), pagerank_config, engine_config)
        predictor = self.make_predictor(engine, engine_config)
        prediction = predictor.predict(medium_scale_free_graph, pagerank_config, sampling_ratio=0.15)
        error = relative_error(prediction.predicted_superstep_runtime, actual.superstep_runtime)
        # The deterministic simulator plus linear cost model should land well
        # within the paper's 10-30% band on this scale-free graph.
        assert error < 0.6

    def test_default_training_ratios_are_papers(self):
        assert DEFAULT_TRAINING_RATIOS == (0.05, 0.1, 0.15, 0.2)

    def test_history_is_used_and_excludes_predicted_dataset(self, engine, engine_config, medium_scale_free_graph, small_scale_free_graph, pagerank_config):
        history = HistoryStore()
        other_run = engine.run(
            small_scale_free_graph, PageRank(), PageRankConfig(tolerance=1e-6), engine_config
        )
        history.record(other_run, dataset="other-graph")
        predictor = self.make_predictor(engine, engine_config, history=history)
        prediction = predictor.predict(
            medium_scale_free_graph, pagerank_config, sampling_ratio=0.1, dataset_name="this-graph"
        )
        assert prediction.used_history

        history_self_only = HistoryStore()
        history_self_only.record(other_run, dataset="this-graph")
        predictor2 = self.make_predictor(engine, engine_config, history=history_self_only)
        prediction2 = predictor2.predict(
            medium_scale_free_graph, pagerank_config, sampling_ratio=0.1, dataset_name="this-graph"
        )
        assert not prediction2.used_history

    def test_sample_run_cache_reused_across_ratios(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        predictor = self.make_predictor(engine, engine_config)
        predictor.predict(medium_scale_free_graph, pagerank_config, sampling_ratio=0.1)
        cached_before = len(predictor.runner.profile_cache)
        predictor.predict(medium_scale_free_graph, pagerank_config, sampling_ratio=0.15)
        # The three training ratios (0.05, 0.1, 0.15) already cover the second
        # prediction ratio, so no new sample run is executed.
        assert cached_before == 3
        assert len(predictor.runner.profile_cache) == cached_before

    def test_predict_iterations_shortcut(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        predictor = self.make_predictor(engine, engine_config)
        iterations = predictor.predict_iterations(
            medium_scale_free_graph, pagerank_config, sampling_ratio=0.1
        )
        assert iterations > 0

    def test_custom_cost_model_factory(self, engine, engine_config, medium_scale_free_graph, pagerank_config):
        predictor = Predictor(
            engine,
            PageRank(),
            sampler=BiasedRandomJump(seed=2),
            training_ratios=(0.05, 0.1),
            cost_model_factory=lambda: CostModel(use_feature_selection=False),
            engine_config=engine_config,
        )
        prediction = predictor.predict(medium_scale_free_graph, pagerank_config, sampling_ratio=0.1)
        assert len(prediction.cost_model.selected_features) == len(
            prediction.cost_model.candidate_features
        )

    def test_topk_prediction_pipeline(self, engine, engine_config, medium_scale_free_graph):
        # PageRank output feeds top-k, mirroring the paper's §4.3 pipeline.
        pr_config = PageRankConfig.for_tolerance_level(0.01, medium_scale_free_graph.num_vertices)
        pr_result = engine.run(
            medium_scale_free_graph, PageRank(), pr_config,
            EngineConfig(num_workers=4, collect_vertex_values=True),
        )
        from repro.algorithms.topk_ranking import config_with_ranks

        topk_config = config_with_ranks(TopKRankingConfig(k=3, tolerance=0.01), pr_result.vertex_values)
        predictor = Predictor(
            engine, TopKRanking(), sampler=BiasedRandomJump(seed=3),
            training_ratios=(0.1, 0.2), engine_config=engine_config,
        )
        prediction = predictor.predict(medium_scale_free_graph, topk_config, sampling_ratio=0.1)
        actual = engine.run(medium_scale_free_graph, TopKRanking(), topk_config, engine_config)
        assert prediction.predicted_iterations > 0
        assert relative_error(prediction.predicted_superstep_runtime, actual.superstep_runtime) < 1.0
