"""Differential testing: memmap-backed CSR graphs vs in-RAM graphs.

The out-of-core path (:mod:`repro.graph.ingest`) promises that a graph
served from an on-disk CSR cache -- whether loaded memmap-backed or fully
into RAM -- is *observationally identical* to the frozen graph it was saved
from: every algorithm, every backend, every field of the run profile.  The
differential machinery is imported from ``test_differential_engine`` so the
matrix automatically widens when the registry gains algorithms.

Process-backend note: ``SharedCSR.export`` copies the arrays into the shared
block regardless of backing, so the workers never touch the memmap -- but
the export itself reads through it, which is exactly the page-in path the
benchmark relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_differential_engine import (
    ALGORITHM_NAMES,
    algorithm_settings,
    assert_profiles_identical,
)

from repro.algorithms.registry import algorithm_by_name
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.graph import generators
from repro.graph.ingest import ingest_edge_list, load_csr_cache, save_csr_cache
from repro.graph.io import write_edge_list


@pytest.fixture(scope="module")
def memmap_engine():
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )
    yield engine
    engine.close_pools()


@pytest.fixture(scope="module")
def graph_trio(tmp_path_factory):
    """(frozen original, memmap-backed load, in-RAM load) of one cache."""
    cache_dir = tmp_path_factory.mktemp("csr-cache")
    frozen = generators.preferential_attachment(130, out_degree=4, seed=3).freeze()
    cache = save_csr_cache(frozen, cache_dir / "pa")
    return frozen, load_csr_cache(cache, mmap_mode="r"), load_csr_cache(cache, mmap_mode=None)


def run_one(engine, graph, algorithm_name, backend, num_workers=4):
    config, max_supersteps = algorithm_settings(algorithm_name)
    return engine.run(
        graph, algorithm_by_name(algorithm_name), config,
        EngineConfig(
            num_workers=num_workers, max_supersteps=max_supersteps, runtime_seed=7,
            collect_vertex_values=True, backend=backend, processes=2,
        ),
    )


@pytest.mark.parametrize("backend", ["inline", "process"])
@pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
def test_memmap_and_ram_loads_bit_identical(
    memmap_engine, graph_trio, algorithm_name, backend
):
    """Every algorithm, both backends: original == memmap load == RAM load."""
    frozen, mmapped, ram = graph_trio
    baseline = run_one(memmap_engine, frozen, algorithm_name, backend)
    assert_profiles_identical(baseline, run_one(memmap_engine, mmapped, algorithm_name, backend))
    assert_profiles_identical(baseline, run_one(memmap_engine, ram, algorithm_name, backend))


@pytest.mark.parametrize("algorithm_name", ["pagerank", "connected-components"])
def test_ingested_graph_runs_bit_identical_to_saved_cache(
    memmap_engine, tmp_path, algorithm_name
):
    """The full chunked-ingest path feeds the engine identically.

    A dense-id graph is written out as an edge list, ingested out-of-core,
    and run memmapped against the in-memory original.  Dense ids make the
    ingester's index == id contract line up with the original's labelling,
    so the whole profile -- values included -- must match exactly.
    """
    frozen = generators.uniform_csr(150, 900, seed=17)
    edge_list = tmp_path / "uniform.txt"
    write_edge_list(frozen, edge_list, write_weights=True)
    # allow_self_loops=True / no dedup: the edge list is preserved verbatim,
    # so the ingested multiset and order equal the original CSR exactly.
    cache = ingest_edge_list(edge_list, tmp_path / "cache", allow_self_loops=True)
    ingested = load_csr_cache(cache)
    assert ingested.num_vertices == frozen.num_vertices
    baseline = run_one(memmap_engine, frozen, algorithm_name, "inline")
    memmapped = run_one(memmap_engine, ingested, algorithm_name, "inline")
    assert_profiles_identical(baseline, memmapped)


def test_memmap_graph_stays_memmapped_through_a_run(memmap_engine, graph_trio):
    """Running must not silently materialise the backing arrays."""
    _, mmapped, _ = graph_trio
    run_one(memmap_engine, mmapped, "pagerank", "inline")
    base = mmapped.targets
    while isinstance(base, np.ndarray) and not isinstance(base, np.memmap):
        base = base.base
    assert isinstance(base, np.memmap)
    assert mmapped.mmap_backed
