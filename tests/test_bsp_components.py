"""Unit tests for the BSP building blocks: aggregators, messages, counters,
runtime model and result objects."""

import pytest

from repro.bsp.aggregators import (
    AggregatorRegistry,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from repro.bsp.counters import IterationProfile, WorkerCounters
from repro.bsp.messages import MessageStore, SumCombiner, default_message_size
from repro.bsp.result import PhaseTimes, RunResult
from repro.bsp.runtime_model import RuntimeModel
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.exceptions import BSPError


class TestAggregators:
    def test_sum_aggregator(self):
        agg = sum_aggregator("s")
        agg.reset()
        agg.contribute(2.0)
        agg.contribute(3.0)
        assert agg.value == 5.0

    def test_max_and_min_aggregators(self):
        mx, mn = max_aggregator("mx"), min_aggregator("mn")
        mx.reset()
        mn.reset()
        for value in (3.0, -1.0, 7.0):
            mx.contribute(value)
            mn.contribute(value)
        assert mx.value == 7.0
        assert mn.value == -1.0

    def test_registry_barrier_snapshots_and_resets(self):
        registry = AggregatorRegistry({"s": sum_aggregator("s")})
        registry.contribute("s", 4.0)
        snapshot = registry.barrier()
        assert snapshot["s"] == 4.0
        assert registry.previous_value("s") == 4.0
        # After the barrier the running value starts from the neutral element.
        assert registry.barrier()["s"] == 0.0

    def test_registry_unknown_aggregator_raises(self):
        registry = AggregatorRegistry()
        with pytest.raises(BSPError):
            registry.contribute("nope", 1.0)
        with pytest.raises(BSPError):
            registry.previous_value("nope")

    def test_registry_register_after_construction(self):
        registry = AggregatorRegistry()
        registry.register(sum_aggregator("late"))
        registry.contribute("late", 1.0)
        assert registry.barrier()["late"] == 1.0
        assert "late" in registry.names()


class TestMessages:
    def test_default_message_size_scalars(self):
        assert default_message_size(1.5) == 8
        assert default_message_size(7) == 8
        assert default_message_size(True) == 1
        assert default_message_size(None) == 1
        assert default_message_size("abcd") == 4

    def test_default_message_size_containers(self):
        assert default_message_size([1.0, 2.0]) == 4 + 16
        assert default_message_size({"a": 1.0}) == 4 + 1 + 8

    def test_default_message_size_unknown_object(self):
        class Thing:
            pass

        assert default_message_size(Thing()) == 16

    def test_message_store_buffers_and_counts(self):
        store = MessageStore()
        store.deliver(1, "x", 5)
        store.deliver(1, "y", 5)
        store.deliver(2, "z", 5)
        assert store.buffered_messages == 3
        assert store.buffered_bytes == 15
        assert store.messages_for(1) == ["x", "y"]
        assert set(store.targets()) == {1, 2}
        assert store.has_messages()

    def test_message_store_combiner_folds(self):
        store = MessageStore(combiner=SumCombiner())
        store.deliver(1, 2.0, 8)
        store.deliver(1, 3.0, 8)
        assert store.messages_for(1) == [5.0]
        # Counters still reflect the messages sent (pre-combining).
        assert store.buffered_messages == 2

    def test_message_store_clear(self):
        store = MessageStore()
        store.deliver(1, "x", 5)
        store.clear()
        assert not store.has_messages()
        assert store.buffered_bytes == 0


class TestCounters:
    def make_counters(self, worker_id=0, local=5, remote=10):
        counters = WorkerCounters(worker_id=worker_id, superstep=0, total_vertices=100)
        counters.active_vertices = 50
        counters.local_messages = local
        counters.remote_messages = remote
        counters.local_message_bytes = local * 8
        counters.remote_message_bytes = remote * 8
        counters.messages_sent = local + remote
        return counters

    def test_worker_counter_derived_metrics(self):
        counters = self.make_counters()
        assert counters.total_messages == 15
        assert counters.total_message_bytes == 120
        assert counters.average_message_size == pytest.approx(8.0)

    def test_worker_counter_zero_messages(self):
        counters = WorkerCounters(worker_id=0, superstep=0)
        assert counters.average_message_size == 0.0

    def test_worker_feature_dict_names(self):
        features = self.make_counters().feature_dict()
        assert set(features) == {
            "ActVert", "TotVert", "LocMsg", "RemMsg", "LocMsgSize", "RemMsgSize", "AvgMsgSize",
        }

    def test_iteration_profile_aggregates_workers(self):
        profile = IterationProfile(
            superstep=0,
            worker_counters=[self.make_counters(0), self.make_counters(1, local=1, remote=2)],
            critical_worker=0,
        )
        assert profile.active_vertices == 100
        assert profile.local_messages == 6
        assert profile.remote_messages == 12
        assert profile.total_messages == 18
        assert profile.critical_counters.worker_id == 0
        assert profile.graph_feature_dict()["RemMsg"] == 12.0
        assert profile.critical_feature_dict()["RemMsg"] == 10.0


class TestRuntimeModel:
    def test_superstep_time_picks_slowest_worker(self):
        model = RuntimeModel(DETERMINISTIC_PROFILE, seed=1)
        light = WorkerCounters(worker_id=0, superstep=0, total_vertices=10)
        heavy = WorkerCounters(worker_id=1, superstep=0, total_vertices=10)
        heavy.remote_messages = 10_000
        heavy.remote_message_bytes = 80_000
        heavy.active_vertices = 10
        runtime, critical = model.superstep_time([light, heavy])
        assert critical == 1
        assert runtime > DETERMINISTIC_PROFILE.barrier_overhead

    def test_superstep_time_without_noise_is_deterministic(self):
        model_a = RuntimeModel(DETERMINISTIC_PROFILE, seed=1)
        model_b = RuntimeModel(DETERMINISTIC_PROFILE, seed=2)
        counters = [WorkerCounters(worker_id=0, superstep=0, total_vertices=5)]
        counters[0].remote_messages = 100
        a, _ = model_a.superstep_time([WorkerCounters(**vars(counters[0]))])
        b, _ = model_b.superstep_time([WorkerCounters(**vars(counters[0]))])
        assert a == pytest.approx(b)

    def test_noise_changes_runtime(self):
        noisy = DETERMINISTIC_PROFILE.with_noise(0.2)
        model = RuntimeModel(noisy, seed=1)
        counters = WorkerCounters(worker_id=0, superstep=0, total_vertices=5)
        counters.remote_messages = 1000
        counters.remote_message_bytes = 8000
        first, _ = model.superstep_time([counters])
        second, _ = model.superstep_time([counters])
        assert first != pytest.approx(second)

    def test_phase_times_scale_with_graph_size(self):
        model = RuntimeModel(DETERMINISTIC_PROFILE, seed=1)
        small = model.read_time(100, 1000, 4)
        large = model.read_time(1000, 10000, 4)
        assert large > small
        assert model.write_time(1000, 4) > model.write_time(100, 4)
        assert model.setup_time() == DETERMINISTIC_PROFILE.setup_time


class TestRunResult:
    def make_profile(self, superstep, runtime, remote_bytes=100):
        counters = WorkerCounters(worker_id=0, superstep=superstep, total_vertices=10)
        counters.active_vertices = 10
        counters.remote_messages = 10
        counters.remote_message_bytes = remote_bytes
        return IterationProfile(
            superstep=superstep, worker_counters=[counters], critical_worker=0, runtime=runtime
        )

    def test_runtime_accounting(self):
        result = RunResult(
            algorithm="pagerank",
            graph_name="g",
            num_vertices=10,
            num_edges=20,
            num_workers=1,
            iterations=[self.make_profile(0, 1.0), self.make_profile(1, 2.0)],
            phase_times=PhaseTimes(setup=1.0, read=0.5, superstep=3.0, write=0.5),
        )
        assert result.num_iterations == 2
        assert result.superstep_runtime == pytest.approx(3.0)
        assert result.total_runtime == pytest.approx(5.0)
        assert result.iteration_runtimes() == [1.0, 2.0]
        assert result.total_remote_message_bytes() == 200
        assert result.total_messages() == 20

    def test_feature_rows_levels(self):
        result = RunResult(
            algorithm="pagerank",
            graph_name="g",
            num_vertices=10,
            num_edges=20,
            num_workers=1,
            iterations=[self.make_profile(0, 1.0)],
        )
        assert len(result.iteration_feature_rows("critical")) == 1
        assert len(result.iteration_feature_rows("graph")) == 1
        with pytest.raises(ValueError):
            result.iteration_feature_rows("bogus")

    def test_summary_contains_key_fields(self):
        result = RunResult(
            algorithm="pagerank", graph_name="g", num_vertices=1, num_edges=1, num_workers=1
        )
        summary = result.summary()
        assert summary["algorithm"] == "pagerank"
        assert "iterations" in summary
