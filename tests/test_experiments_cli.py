"""Tests for the experiments command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestCli:
    def test_every_paper_artefact_has_an_entry(self):
        assert {"table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                "upper-bounds", "table3"} <= set(EXPERIMENTS)

    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig4" in output and "table3" in output

    def test_no_arguments_lists_experiments(self, capsys):
        assert main([]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.scale == pytest.approx(0.4)
        assert args.workers == 8
        assert args.seed == 42
        assert args.no_freeze is False
        assert args.partitioner == "hash"
        assert args.no_partition_native is False

    def test_no_freeze_flag_parses(self):
        args = build_parser().parse_args(["fig4", "--no-freeze"])
        assert args.no_freeze is True

    def test_partitioner_flag_parses(self):
        args = build_parser().parse_args(["fig4", "--partitioner", "range"])
        assert args.partitioner == "range"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--partitioner", "metis"])

    def test_no_partition_native_identical_output(self, capsys):
        # The gather-based legacy layout must print byte-for-byte the same
        # table as the partition-native layout (the layouts are bit-exact).
        base = ["table2", "--scale", "0.1", "--workers", "4", "--seed", "3"]
        assert main(base) == 0
        native_output = capsys.readouterr().out
        assert main(base + ["--no-partition-native"]) == 0
        gather_output = capsys.readouterr().out
        assert gather_output == native_output

    def test_no_freeze_forces_scalar_path_with_identical_output(self, capsys):
        # The scalar per-vertex path must print byte-for-byte the same table
        # the frozen/vectorized path prints (the fast paths are bit-exact).
        base = ["table2", "--scale", "0.1", "--workers", "4", "--seed", "3"]
        assert main(base) == 0
        frozen_output = capsys.readouterr().out
        assert main(base + ["--no-freeze"]) == 0
        scalar_output = capsys.readouterr().out
        assert scalar_output == frozen_output

    def test_runs_a_cheap_experiment_end_to_end(self, capsys):
        # table2 at a tiny scale exercises the full dispatch path quickly.
        assert main(["table2", "--scale", "0.1", "--workers", "4", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "twitter" in output
