"""Unit tests for key input features, feature tables and transform functions."""

import dataclasses

import pytest

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.semi_clustering import SemiClustering, SemiClusteringConfig
from repro.algorithms.topk_ranking import TopKRanking, TopKRankingConfig
from repro.core.features import (
    EDGE_SCALED_FEATURES,
    KEY_INPUT_FEATURES,
    NOT_EXTRAPOLATED_FEATURES,
    VERTEX_SCALED_FEATURES,
    FeatureTable,
)
from repro.core.transform import (
    IDENTITY_TRANSFORM,
    THRESHOLD_SCALING_TRANSFORM,
    custom_transform,
    default_transform,
)
from repro.exceptions import ConfigurationError, ModelingError


class TestFeatureConstants:
    def test_candidate_pool_matches_table1(self):
        assert KEY_INPUT_FEATURES == [
            "ActVert", "TotVert", "LocMsg", "RemMsg", "LocMsgSize", "RemMsgSize", "AvgMsgSize",
        ]

    def test_extrapolation_classes_cover_all_features(self):
        covered = VERTEX_SCALED_FEATURES | EDGE_SCALED_FEATURES | NOT_EXTRAPOLATED_FEATURES
        assert set(KEY_INPUT_FEATURES) <= covered

    def test_extrapolation_classes_disjoint(self):
        assert not (VERTEX_SCALED_FEATURES & EDGE_SCALED_FEATURES)
        assert not (VERTEX_SCALED_FEATURES & NOT_EXTRAPOLATED_FEATURES)


class TestFeatureTable:
    def make_table(self):
        table = FeatureTable()
        table.append({"ActVert": 10.0, "RemMsg": 100.0}, 1.0)
        table.append({"ActVert": 20.0, "RemMsg": 200.0}, 2.0)
        return table

    def test_append_and_len(self):
        table = self.make_table()
        assert len(table) == 2
        assert table.runtimes == [1.0, 2.0]

    def test_matrix_and_response(self):
        table = self.make_table()
        matrix = table.matrix(["RemMsg", "ActVert"])
        assert matrix.shape == (2, 2)
        assert matrix[1, 0] == 200.0
        assert list(table.response()) == [1.0, 2.0]

    def test_matrix_missing_feature_raises(self):
        table = self.make_table()
        with pytest.raises(ModelingError):
            table.matrix(["Nope"])

    def test_matrix_empty_table_raises(self):
        with pytest.raises(ModelingError):
            FeatureTable().matrix(["ActVert"])

    def test_feature_names_intersection_ordered(self):
        table = FeatureTable()
        table.append({"ActVert": 1.0, "RemMsg": 2.0, "Extra": 3.0}, 1.0)
        table.append({"ActVert": 1.0, "RemMsg": 2.0}, 1.0)
        assert table.feature_names == ["ActVert", "RemMsg"]

    def test_extend_and_merge(self):
        table = self.make_table()
        other = self.make_table()
        merged = FeatureTable.merge([table, other])
        assert len(merged) == 4
        table.extend(other)
        assert len(table) == 4

    def test_append_copies_rows(self):
        row = {"ActVert": 1.0}
        table = FeatureTable()
        table.append(row, 1.0)
        row["ActVert"] = 99.0
        assert table.rows[0]["ActVert"] == 1.0


class TestTransformFunctions:
    def test_default_transform_selection(self):
        assert default_transform(PageRank()).name == "threshold-scaling"
        assert default_transform(SemiClustering()).name == "identity"
        assert default_transform(TopKRanking()).name == "identity"

    def test_threshold_scaling_divides_by_ratio(self):
        config = PageRankConfig(tolerance=1e-6)
        scaled = THRESHOLD_SCALING_TRANSFORM(PageRank(), config, 0.1)
        assert scaled.tolerance == pytest.approx(1e-5)
        # The original configuration is untouched (transforms are pure).
        assert config.tolerance == pytest.approx(1e-6)

    def test_threshold_scaling_preserves_other_parameters(self):
        config = PageRankConfig(damping=0.9, tolerance=1e-6)
        scaled = THRESHOLD_SCALING_TRANSFORM(PageRank(), config, 0.2)
        assert scaled.damping == 0.9

    def test_identity_transform_returns_config_unchanged(self):
        config = SemiClusteringConfig(tolerance=0.01)
        assert IDENTITY_TRANSFORM(SemiClustering(), config, 0.1) is config

    def test_invalid_sampling_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            THRESHOLD_SCALING_TRANSFORM(PageRank(), PageRankConfig(), 0.0)
        with pytest.raises(ConfigurationError):
            IDENTITY_TRANSFORM(SemiClustering(), SemiClusteringConfig(), 1.5)

    def test_custom_transform_threshold_scaler(self):
        transform = custom_transform(
            "sqrt-scaling", threshold_scaler=lambda tau, sr: tau / (sr**0.5)
        )
        config = PageRankConfig(tolerance=1e-4)
        scaled = transform(PageRank(), config, 0.25)
        assert scaled.tolerance == pytest.approx(2e-4)

    def test_custom_transform_config_overrides(self):
        transform = custom_transform("small-vmax", config_overrides={"v_max": 5})
        config = SemiClusteringConfig(v_max=10)
        adjusted = transform(SemiClustering(), config, 0.1)
        assert adjusted.v_max == 5
        assert config.v_max == 10

    def test_with_convergence_threshold_requires_attribute(self):
        from repro.algorithms.connected_components import ConnectedComponents, ConnectedComponentsConfig

        with pytest.raises(ConfigurationError):
            ConnectedComponents().with_convergence_threshold(ConnectedComponentsConfig(), 0.1)

    def test_convergence_threshold_accessor(self):
        assert PageRank().convergence_threshold(PageRankConfig(tolerance=0.5)) == 0.5
        assert TopKRanking().convergence_threshold(TopKRankingConfig(tolerance=0.25)) == 0.25
