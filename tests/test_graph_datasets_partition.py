"""Unit tests for the stand-in dataset registry and the vertex partitioners."""

import pytest

from repro.exceptions import ConfigurationError
from repro.graph import datasets
from repro.graph.partition import ChunkPartitioner, HashPartitioner, RangePartitioner
from repro.graph.properties import is_scale_free


class TestDatasetRegistry:
    def test_available_datasets(self):
        names = datasets.available_datasets()
        assert set(names) == {"livejournal", "wikipedia", "twitter", "uk-2002"}

    def test_dataset_spec_lookup_case_insensitive(self):
        spec = datasets.dataset_spec("Wikipedia")
        assert spec.prefix == "Wiki"

    def test_unknown_dataset_raises(self):
        with pytest.raises(ConfigurationError):
            datasets.dataset_spec("orkut")

    def test_load_dataset_scales_with_scale(self):
        small = datasets.load_dataset("wikipedia", scale=0.1, seed=1)
        large = datasets.load_dataset("wikipedia", scale=0.3, seed=1)
        assert large.num_vertices > small.num_vertices

    def test_load_dataset_cached(self):
        a = datasets.load_dataset("wikipedia", scale=0.1, seed=1)
        b = datasets.load_dataset("wikipedia", scale=0.1, seed=1)
        assert a is b

    def test_clear_cache(self):
        a = datasets.load_dataset("wikipedia", scale=0.1, seed=1)
        datasets.clear_cache()
        b = datasets.load_dataset("wikipedia", scale=0.1, seed=1)
        assert a is not b

    def test_invalid_scale_raises(self):
        with pytest.raises(ConfigurationError):
            datasets.load_dataset("wikipedia", scale=0)

    def test_twitter_standin_is_densest(self):
        tw = datasets.load_dataset("twitter", scale=0.15, seed=2)
        wiki = datasets.load_dataset("wikipedia", scale=0.15, seed=2)
        assert tw.num_edges / tw.num_vertices > wiki.num_edges / wiki.num_vertices

    def test_livejournal_standin_not_scale_free(self):
        lj = datasets.load_dataset("livejournal", scale=0.5, seed=3)
        assert not is_scale_free(lj)

    def test_wikipedia_standin_scale_free(self):
        wiki = datasets.load_dataset("wikipedia", scale=0.5, seed=3)
        assert is_scale_free(wiki)

    def test_paper_table2_rows_complete(self):
        rows = datasets.paper_table2_rows()
        assert len(rows) == 4
        assert any(row["prefix"] == "TW" for row in rows)


class TestPartitioners:
    @pytest.mark.parametrize("partitioner_cls", [HashPartitioner, RangePartitioner, ChunkPartitioner])
    def test_every_vertex_assigned_exactly_once(self, partitioner_cls, small_scale_free_graph):
        partitioning = partitioner_cls().partition(small_scale_free_graph, 4)
        assert len(partitioning.assignment) == small_scale_free_graph.num_vertices
        assert sum(partitioning.worker_vertex_counts()) == small_scale_free_graph.num_vertices
        assert all(0 <= w < 4 for w in partitioning.assignment.values())

    def test_chunk_partitioner_balanced(self, small_scale_free_graph):
        partitioning = ChunkPartitioner().partition(small_scale_free_graph, 4)
        counts = partitioning.worker_vertex_counts()
        assert max(counts) - min(counts) <= 1

    def test_worker_outbound_edges_sum_to_total(self, small_scale_free_graph):
        partitioning = HashPartitioner().partition(small_scale_free_graph, 4)
        outbound = partitioning.worker_outbound_edges(small_scale_free_graph)
        assert sum(outbound) == small_scale_free_graph.num_edges

    def test_worker_of_and_vertices_of_consistent(self, small_scale_free_graph):
        partitioning = HashPartitioner().partition(small_scale_free_graph, 3)
        for worker in range(3):
            for vertex in partitioning.vertices_of(worker):
                assert partitioning.worker_of(vertex) == worker

    def test_invalid_worker_count_raises(self, small_scale_free_graph):
        with pytest.raises(ConfigurationError):
            HashPartitioner().partition(small_scale_free_graph, 0)

    def test_empty_graph_raises(self):
        from repro.graph.digraph import DiGraph

        with pytest.raises(ConfigurationError):
            HashPartitioner().partition(DiGraph(), 2)

    def test_range_partitioner_contiguous(self):
        from repro.graph.digraph import DiGraph

        graph = DiGraph()
        for vertex in range(10):
            graph.add_vertex(vertex)
        partitioning = RangePartitioner().partition(graph, 2)
        assert partitioning.worker_of(0) == 0
        assert partitioning.worker_of(9) == 1
