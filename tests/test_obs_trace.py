"""Tests for the ``repro.obs`` telemetry subsystem.

Four layers, matching the subsystem's promises:

1. tracer core -- span nesting, begin/finish, attributes, counters/gauges,
   drain/adopt round-trips across a simulated process boundary;
2. **off means free** -- the inline engine hot path makes zero allocations
   inside ``repro/obs`` when tracing is disabled (tracemalloc probe);
3. engine integration -- an inline traced run produces the full span
   taxonomy with measured *and* modeled time on every superstep span, and
   the process backend ships child spans to the master with correct
   re-parenting and wall-clock containment;
4. exporters -- JSONL, Chrome ``trace_event`` and the text summary, plus
   the standalone ``scripts/trace_summary.py`` reader over both formats.
"""

from __future__ import annotations

import importlib.util
import json
import pickle
import tracemalloc
from pathlib import Path

import pytest

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.graph import generators
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    activate,
    current_tracer,
    span_dicts,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Span names every traced engine run must produce (inline backend).
ENGINE_SPAN_NAMES = {
    "engine.run", "phase.setup", "phase.read", "phase.superstep",
    "phase.write", "superstep", "compute", "barrier",
}

#: Attribute keys every superstep span carries (measured + modeled pairing).
SUPERSTEP_ATTR_KEYS = {
    "superstep", "modeled_s", "barrier_s", "active_vertices",
    "messages_sent", "local_message_bytes", "remote_message_bytes",
    "critical_worker", "worker_imbalance", "rss_kb",
}


def make_engine() -> BSPEngine:
    return BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )


def traced_run(backend: str, tracer: Tracer, processes: int = 2):
    graph = generators.preferential_attachment(150, out_degree=4, seed=3).freeze()
    engine = make_engine()
    try:
        return engine.run(
            graph, PageRank(), PageRankConfig(tolerance=1e-4),
            EngineConfig(num_workers=4, max_supersteps=30, runtime_seed=7,
                         backend=backend, processes=processes, trace=tracer),
        )
    finally:
        engine.close_pools()


@pytest.fixture(scope="module")
def inline_trace():
    tracer = Tracer()
    result = traced_run("inline", tracer)
    return tracer, result


@pytest.fixture(scope="module")
def process_trace():
    tracer = Tracer()
    result = traced_run("process", tracer)
    return tracer, result


# ------------------------------------------------------------- tracer core
def test_span_nesting_and_parent_ids():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        with tracer.span("sibling") as sibling:
            assert sibling.parent_id == outer.span_id
    assert outer.parent_id is None
    # Close order: children before parents.
    assert [s.name for s in tracer.spans] == ["inner", "sibling", "outer"]
    assert all(s.duration >= 0.0 for s in tracer.spans)


def test_begin_finish_is_idempotent():
    tracer = Tracer()
    span = tracer.begin("phase")
    span.finish()
    duration = span.duration
    span.finish()  # no double-append, no duration change
    assert span.duration == duration
    assert len(tracer.spans) == 1


def test_span_attrs_set_and_merge():
    tracer = Tracer()
    with tracer.span("s") as span:
        span.set("a", 1).merge({"b": 2.5, "c": "x"})
    assert span.attrs == {"a": 1, "b": 2.5, "c": "x"}


def test_counters_accumulate_and_gauges_record():
    tracer = Tracer()
    tracer.counter("messages")
    tracer.counter("messages", 4)
    tracer.gauge("rss_kb", 123.0)
    assert tracer.counters == {"messages": 5}
    [(name, track, _, value)] = tracer.gauges
    assert (name, track, value) == ("rss_kb", "main", 123.0)


def test_drain_adopt_roundtrip_reparents_and_remaps():
    child = Tracer(track="proc0")
    with child.span("compute") as comp:
        comp.set("superstep", 0)
        with child.span("kernel"):
            pass
    records = child.drain()
    assert child.spans == []  # drained
    # Records must survive the pipe: picklable plain tuples.
    records = pickle.loads(pickle.dumps(records))

    master = Tracer()
    host = master.begin("superstep")
    master.adopt(records, parent_id=host.span_id)
    host.finish()

    by_name = {s.name: s for s in master.spans}
    assert by_name["compute"].parent_id == host.span_id  # root re-parented
    assert by_name["kernel"].parent_id == by_name["compute"].span_id  # remapped
    assert by_name["compute"].track == "proc0"
    assert by_name["compute"].attrs == {"superstep": 0}
    ids = [s.span_id for s in master.spans]
    assert len(ids) == len(set(ids))  # no id collisions after remap


def test_drain_adopt_rebases_clocks():
    child = Tracer(track="proc0")
    with child.span("compute"):
        pass
    master = Tracer()
    host = master.begin("host")
    master.adopt(child.drain(), parent_id=host.span_id)
    host.finish()
    adopted = next(s for s in master.spans if s.name == "compute")
    # Both tracers were created moments apart in this process, so after the
    # wall->perf re-base the adopted span sits on the master timeline.
    assert abs(adopted.start - host.start) < 5.0


def test_drain_leaves_open_spans_on_stack():
    tracer = Tracer()
    open_span = tracer.begin("open")
    with tracer.span("closed"):
        pass
    records = tracer.drain()
    assert [r[2] for r in records] == ["closed"]
    open_span.finish()
    assert [s.name for s in tracer.spans] == ["open"]


# ----------------------------------------------------------- off means free
def test_null_tracer_is_a_shared_noop():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.span("x") is NULL_SPAN
    assert NULL_TRACER.begin("x") is NULL_SPAN
    assert NULL_SPAN.set("k", 1) is NULL_SPAN
    assert NULL_SPAN.merge({"k": 1}) is NULL_SPAN
    with NULL_TRACER.span("x") as span:
        assert span is NULL_SPAN
    assert NULL_TRACER.drain() == []


def test_untraced_run_allocates_nothing_in_obs():
    """The inline hot path must be allocation-free inside repro/obs when
    tracing is off -- the 'off means free' contract of docs/OBSERVABILITY.md."""
    graph = generators.preferential_attachment(80, out_degree=3, seed=1).freeze()
    engine = make_engine()
    config = EngineConfig(num_workers=2, max_supersteps=10, runtime_seed=7)
    engine.run(graph, PageRank(), PageRankConfig(tolerance=1e-3), config)  # warm up

    import repro.obs.tracer as tracer_module

    obs_filter = tracemalloc.Filter(True, tracer_module.__file__)
    tracemalloc.start(10)
    try:
        result = engine.run(graph, PageRank(), PageRankConfig(tolerance=1e-3), config)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    obs_allocations = snapshot.filter_traces([obs_filter]).statistics("lineno")
    assert not obs_allocations, (
        f"tracing-off run allocated inside repro/obs: {obs_allocations}"
    )
    assert result.trace is None


# ------------------------------------------------------- engine integration
def test_inline_trace_has_full_span_taxonomy(inline_trace):
    tracer, result = inline_trace
    assert result.trace is tracer
    names = {s.name for s in tracer.spans}
    assert ENGINE_SPAN_NAMES <= names
    assert not any(s._open for s in tracer.spans)


def test_inline_superstep_spans_carry_measured_and_modeled(inline_trace):
    tracer, result = inline_trace
    supersteps = sorted(
        (s for s in tracer.spans if s.name == "superstep"),
        key=lambda s: s.attrs["superstep"],
    )
    assert len(supersteps) == result.num_iterations
    for index, span in enumerate(supersteps):
        assert SUPERSTEP_ATTR_KEYS <= set(span.attrs)
        assert span.attrs["superstep"] == index
        assert span.duration > 0.0            # measured wall time
        assert span.attrs["modeled_s"] > 0.0  # RuntimeModel simulated time
        assert span.attrs["worker_imbalance"] >= 1.0
    # Modeled time must sum to the run's simulated superstep runtime.
    modeled = sum(s.attrs["modeled_s"] for s in supersteps)
    assert modeled == pytest.approx(result.superstep_runtime, rel=1e-9)


def test_inline_phase_spans_nest_under_engine_run(inline_trace):
    tracer, _ = inline_trace
    run_span = next(s for s in tracer.spans if s.name == "engine.run")
    phases = [s for s in tracer.spans if s.name.startswith("phase.")]
    assert {s.name for s in phases} == {
        "phase.setup", "phase.read", "phase.superstep", "phase.write"
    }
    assert all(s.parent_id == run_span.span_id for s in phases)
    loop = next(s for s in phases if s.name == "phase.superstep")
    supersteps = [s for s in tracer.spans if s.name == "superstep"]
    assert all(s.parent_id == loop.span_id for s in supersteps)


def test_process_trace_matches_inline_results(process_trace, inline_trace):
    _, process_result = process_trace
    _, inline_result = inline_trace
    assert process_result.num_iterations == inline_result.num_iterations
    assert process_result.superstep_runtime == pytest.approx(
        inline_result.superstep_runtime
    )


def test_process_trace_ships_child_spans(process_trace):
    tracer, result = process_trace
    tracks = {s.track for s in tracer.spans}
    assert tracks == {"main", "proc0", "proc1"}
    child_compute = [
        s for s in tracer.spans if s.name == "compute" and s.track != "main"
    ]
    # Two worker processes, one compute span each per superstep.
    assert len(child_compute) == 2 * result.num_iterations


def test_process_child_spans_nest_under_their_superstep(process_trace):
    tracer, _ = process_trace
    superstep_by_id = {
        s.span_id: s for s in tracer.spans if s.name == "superstep"
    }
    child_compute = [
        s for s in tracer.spans if s.name == "compute" and s.track != "main"
    ]
    assert child_compute
    for child in child_compute:
        parent = superstep_by_id.get(child.parent_id)
        assert parent is not None, "child compute span not under a superstep"
        # The superstep attr recorded by the child matches the master span
        # the record was re-parented to.
        assert child.attrs["superstep"] == parent.attrs["superstep"]
        # Wall-clock containment (clocks are shared on one host; allow the
        # wall->perf re-base tolerance).
        assert child.start >= parent.start - 1e-3
        assert child.start + child.duration <= parent.start + parent.duration + 1e-3


def test_process_superstep_wall_covers_child_compute(process_trace):
    tracer, _ = process_trace
    supersteps = {
        s.attrs["superstep"]: s for s in tracer.spans if s.name == "superstep"
    }
    for index, span in supersteps.items():
        children = [
            c for c in tracer.spans
            if c.name == "compute" and c.track != "main"
            and c.attrs["superstep"] == index
        ]
        assert span.duration + 1e-3 >= max(c.duration for c in children)
        assert SUPERSTEP_ATTR_KEYS <= set(span.attrs)
        assert span.attrs["modeled_s"] > 0.0


# ---------------------------------------------------------------- ambient
def test_ambient_tracer_activation():
    assert current_tracer() is NULL_TRACER
    tracer = Tracer()
    with activate(tracer):
        assert current_tracer() is tracer
        with activate(None):
            assert current_tracer() is NULL_TRACER
        assert current_tracer() is tracer
    assert current_tracer() is NULL_TRACER


def test_predictor_spans_reach_engine_tracer():
    from repro.core.predictor import Predictor
    from repro.sampling.registry import sampler_by_name

    graph = generators.preferential_attachment(150, out_degree=4, seed=3).freeze()
    tracer = Tracer()
    engine = make_engine()
    predictor = Predictor(
        engine, PageRank(),
        sampler=sampler_by_name("BRJ", seed=11),  # unseeded default would flake
        engine_config=EngineConfig(num_workers=4, max_supersteps=30,
                                   runtime_seed=7, trace=tracer),
        training_ratios=(0.2, 0.3),
    )
    predictor.predict(graph, PageRankConfig(tolerance=1e-3), sampling_ratio=0.3)
    names = {s.name for s in tracer.spans}
    assert {"predict", "sample_run", "sample", "transform",
            "regression.fit", "engine.run"} <= names
    predict_span = next(s for s in tracer.spans if s.name == "predict")
    assert predict_span.attrs["predicted_superstep_runtime_s"] > 0.0
    # Sample runs nest under the prediction.
    sample_runs = [s for s in tracer.spans if s.name == "sample_run"]
    assert all(s.parent_id == predict_span.span_id for s in sample_runs)


# --------------------------------------------------------------- exporters
def test_span_dicts_are_start_ordered(inline_trace):
    tracer, _ = inline_trace
    rows = span_dicts(tracer)
    starts = [row["start_s"] for row in rows]
    assert starts == sorted(starts)
    assert {"span_id", "parent_id", "name", "track", "start_s",
            "duration_s", "attrs"} <= set(rows[0])


def test_jsonl_export(inline_trace, tmp_path):
    tracer, _ = inline_trace
    path = tmp_path / "trace.jsonl"
    write_jsonl(tracer, str(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    spans = [r for r in records if r["type"] == "span"]
    assert len(spans) == len(tracer.spans)
    assert all(json.dumps(r) for r in records)  # every row JSON-safe


def test_chrome_trace_export(process_trace, tmp_path):
    tracer, result = process_trace
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer, str(path))
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    thread_names = {e["args"]["name"] for e in metadata}
    assert thread_names == {"main", "proc0", "proc1"}
    # "main" gets tid 0 so Perfetto shows the master timeline first.
    assert next(e for e in metadata if e["args"]["name"] == "main")["tid"] == 0
    assert len(complete) == len(tracer.spans)
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
    supersteps = [e for e in complete if e["name"] == "superstep"]
    assert len(supersteps) == result.num_iterations
    assert all("modeled_s" in e["args"] for e in supersteps)


def test_summary_table_reports_measured_vs_modeled(inline_trace):
    tracer, _ = inline_trace
    text = summary_table(tracer)
    assert "Span summary" in text
    assert "Measured vs modeled supersteps" in text
    assert "superstep" in text and "modeled_s" in text


@pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
def test_trace_summary_script_reads_both_formats(inline_trace, tmp_path, fmt, capsys):
    tracer, _ = inline_trace
    if fmt == "chrome":
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
    else:
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, str(path))

    script = REPO_ROOT / "scripts" / "trace_summary.py"
    spec = importlib.util.spec_from_file_location("trace_summary", script)
    trace_summary = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(trace_summary)
    assert trace_summary.main([str(path)]) == 0
    output = capsys.readouterr().out
    assert "Span summary" in output
    assert "Measured vs modeled supersteps" in output
