"""Unit tests for repro.utils.tables and repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, spawn_rng
from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "3" in text and "4" in text

    def test_title_rendered_with_underline(self):
        text = format_table(["x"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert set(lines[1]) == {"="}

    def test_floats_rounded_to_four_decimals(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_alignment_consistent_widths(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[-1]) >= len("a-much-longer-cell")


class TestFormatSeries:
    def test_series_columns_present(self):
        text = format_series("ratio", [0.1, 0.2], {"LJ": [1, 2], "UK": [3, 4]})
        assert "LJ" in text and "UK" in text
        assert "ratio" in text

    def test_missing_values_render_blank(self):
        text = format_series("x", [1, 2], {"s": [5]})
        assert "5.0000" in text or "5" in text


class TestRng:
    def test_make_rng_accepts_none(self):
        rng = make_rng(None)
        assert isinstance(rng, np.random.Generator)

    def test_make_rng_deterministic_for_seed(self):
        a = make_rng(42).integers(0, 1000, size=5)
        b = make_rng(42).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_make_rng_passes_through_generator(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_spawn_rng_decorrelated_streams(self):
        parent = make_rng(0)
        child_a = spawn_rng(parent, 1)
        parent2 = make_rng(0)
        child_b = spawn_rng(parent2, 2)
        assert list(child_a.integers(0, 10**6, 5)) != list(child_b.integers(0, 10**6, 5))

    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")
        assert derive_seed(42, "x") != derive_seed(42, "y")
        assert derive_seed(None, "x") == derive_seed(None, "x")
