"""Unit tests for the extrapolator, the cost model, the history store, the
critical-path heuristic, the analytical bounds and the evaluation records."""

import numpy as np
import pytest

from repro.bsp.engine import EngineConfig
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.core.bounds import (
    bound_misprediction_factor,
    connected_components_upper_bound,
    pagerank_dag_bound,
    pagerank_iteration_upper_bound,
)
from repro.core.cost_model import CostModel
from repro.core.critical_path import critical_path_accuracy, estimate_critical_path
from repro.core.errors import PredictionEvaluation
from repro.core.extrapolation import Extrapolator, ScalingFactors
from repro.core.features import FeatureTable
from repro.core.history import HistoryStore
from repro.exceptions import ConfigurationError, HistoryError, ModelingError
from repro.graph.partition import HashPartitioner


class TestScalingFactors:
    def test_from_counts(self):
        factors = ScalingFactors.from_counts(1000, 10000, 100, 500)
        assert factors.vertex_factor == pytest.approx(10.0)
        assert factors.edge_factor == pytest.approx(20.0)

    def test_from_counts_rejects_empty_sample(self):
        with pytest.raises(ModelingError):
            ScalingFactors.from_counts(1000, 10000, 0, 500)


class TestExtrapolator:
    def test_feature_specific_scaling(self):
        extrapolator = Extrapolator(ScalingFactors(vertex_factor=10.0, edge_factor=20.0))
        row = {
            "ActVert": 5.0, "TotVert": 8.0,
            "LocMsg": 3.0, "RemMsg": 4.0, "LocMsgSize": 30.0, "RemMsgSize": 40.0,
            "AvgMsgSize": 12.0,
        }
        scaled = extrapolator.extrapolate_row(row)
        assert scaled["ActVert"] == pytest.approx(50.0)
        assert scaled["TotVert"] == pytest.approx(80.0)
        assert scaled["RemMsg"] == pytest.approx(80.0)
        assert scaled["RemMsgSize"] == pytest.approx(800.0)
        # Ratios are not extrapolated.
        assert scaled["AvgMsgSize"] == pytest.approx(12.0)

    def test_unknown_features_scale_with_edges(self):
        extrapolator = Extrapolator(ScalingFactors(vertex_factor=2.0, edge_factor=7.0))
        scaled = extrapolator.extrapolate_row({"SpilledBytes": 10.0})
        assert scaled["SpilledBytes"] == pytest.approx(70.0)

    def test_extrapolate_rows_per_iteration(self):
        extrapolator = Extrapolator(ScalingFactors(vertex_factor=2.0, edge_factor=2.0))
        rows = [{"ActVert": 1.0}, {"ActVert": 2.0}, {"ActVert": 3.0}]
        scaled = extrapolator.extrapolate_rows(rows)
        assert [r["ActVert"] for r in scaled] == [2.0, 4.0, 6.0]
        assert len(scaled) == 3


def make_cost_table(num_rows=30, seed=0):
    """Synthetic per-iteration observations with a known cost structure."""
    rng = np.random.default_rng(seed)
    table = FeatureTable()
    for _ in range(num_rows):
        act = float(rng.uniform(10, 1000))
        rem_msg = float(rng.uniform(100, 10_000))
        rem_bytes = rem_msg * 8
        runtime = 1e-4 * act + 2e-4 * rem_msg + 4e-5 * rem_bytes + 0.1
        table.append(
            {
                "ActVert": act, "TotVert": act, "LocMsg": 0.0, "RemMsg": rem_msg,
                "LocMsgSize": 0.0, "RemMsgSize": rem_bytes, "AvgMsgSize": 8.0,
            },
            runtime,
        )
    return table


class TestCostModel:
    def test_train_and_predict(self):
        model = CostModel().train(make_cost_table())
        assert model.is_trained
        assert model.r_squared > 0.99
        row = {
            "ActVert": 500.0, "TotVert": 500.0, "LocMsg": 0.0, "RemMsg": 5000.0,
            "LocMsgSize": 0.0, "RemMsgSize": 40_000.0, "AvgMsgSize": 8.0,
        }
        expected = 1e-4 * 500 + 2e-4 * 5000 + 4e-5 * 40_000 + 0.1
        assert model.predict_iteration(row) == pytest.approx(expected, rel=0.05)

    def test_predict_run_and_total(self):
        model = CostModel().train(make_cost_table())
        rows = [
            {"ActVert": 100.0, "TotVert": 100.0, "LocMsg": 0.0, "RemMsg": 1000.0,
             "LocMsgSize": 0.0, "RemMsgSize": 8000.0, "AvgMsgSize": 8.0},
        ] * 3
        per_iteration = model.predict_run(rows)
        assert len(per_iteration) == 3
        assert model.predict_total(rows) == pytest.approx(sum(per_iteration))

    def test_prediction_clamped_at_zero(self):
        table = FeatureTable()
        for i in range(10):
            table.append({"ActVert": float(i), "RemMsg": float(i)}, float(i))
        model = CostModel(candidate_features=["ActVert", "RemMsg"]).train(table)
        assert model.predict_iteration({"ActVert": -1e9, "RemMsg": -1e9}) == 0.0

    def test_untrained_model_raises(self):
        model = CostModel()
        with pytest.raises(ModelingError):
            model.predict_iteration({"ActVert": 1.0})
        with pytest.raises(ModelingError):
            _ = model.r_squared

    def test_training_requires_two_observations(self):
        table = FeatureTable()
        table.append({"ActVert": 1.0}, 1.0)
        with pytest.raises(ModelingError):
            CostModel().train(table)
        with pytest.raises(ModelingError):
            CostModel().train(FeatureTable())

    def test_feature_selection_can_be_disabled(self):
        table = make_cost_table()
        selected = CostModel(use_feature_selection=True).train(table)
        everything = CostModel(use_feature_selection=False).train(table)
        assert len(everything.selected_features) >= len(selected.selected_features)

    def test_describe_and_coefficients(self):
        model = CostModel().train(make_cost_table())
        description = model.describe()
        assert description["r_squared"] > 0.99
        assert set(description["selected_features"]) == set(model.selected_features)
        assert "residual" in model.coefficients()


class TestHistoryStore:
    def make_run(self, engine, graph, engine_config):
        return engine.run(graph, PageRank(), PageRankConfig(tolerance=1e-6), engine_config)

    def test_record_and_training_table(self, engine, engine_config, small_scale_free_graph):
        run = self.make_run(engine, small_scale_free_graph, engine_config)
        history = HistoryStore()
        record = history.record(run, dataset="graph-a")
        assert record.num_iterations == run.num_iterations
        assert len(history) == 1
        table = history.training_table("pagerank")
        assert len(table) == run.num_iterations

    def test_exclude_dataset(self, engine, engine_config, small_scale_free_graph, medium_scale_free_graph):
        history = HistoryStore()
        history.record(self.make_run(engine, small_scale_free_graph, engine_config), dataset="a")
        history.record(self.make_run(engine, medium_scale_free_graph, engine_config), dataset="b")
        with_all = history.training_table("pagerank")
        without_a = history.training_table("pagerank", exclude_dataset="a")
        assert len(without_a) < len(with_all)
        assert history.datasets("pagerank") == ["a", "b"]

    def test_filter_by_algorithm(self, engine, engine_config, small_scale_free_graph):
        history = HistoryStore()
        history.record(self.make_run(engine, small_scale_free_graph, engine_config), dataset="a")
        assert history.runs("pagerank")
        assert history.runs("semi-clustering") == []
        assert len(history.training_table("semi-clustering")) == 0

    def test_summary_and_clear(self, engine, engine_config, small_scale_free_graph):
        history = HistoryStore()
        history.record(self.make_run(engine, small_scale_free_graph, engine_config), dataset="a")
        assert history.summary()[0]["dataset"] == "a"
        history.clear()
        assert len(history) == 0

    def test_empty_run_rejected(self):
        from repro.bsp.result import RunResult

        empty = RunResult(
            algorithm="pagerank", graph_name="g", num_vertices=1, num_edges=1, num_workers=1
        )
        with pytest.raises(HistoryError):
            HistoryStore().record(empty)


class TestCriticalPath:
    def test_estimate_matches_observed_critical_worker(self, engine, engine_config, small_scale_free_graph):
        partitioning = HashPartitioner().partition(small_scale_free_graph, 4)
        estimate = estimate_critical_path(small_scale_free_graph, partitioning)
        assert estimate.outbound_edges[estimate.critical_worker] == max(estimate.outbound_edges)
        result = engine.run(
            small_scale_free_graph, PageRank(), PageRankConfig(tolerance=1e-6), engine_config
        )
        observed = [profile.critical_worker for profile in result.iterations]
        # PageRank messaging is proportional to outbound edges, so the
        # pre-execution heuristic should identify the critical worker for the
        # vast majority of supersteps.
        assert critical_path_accuracy(estimate, observed) >= 0.8

    def test_skew_at_least_one(self, small_scale_free_graph):
        partitioning = HashPartitioner().partition(small_scale_free_graph, 4)
        estimate = estimate_critical_path(small_scale_free_graph, partitioning)
        assert estimate.skew >= 1.0

    def test_accuracy_empty_observation_list(self, small_scale_free_graph):
        partitioning = HashPartitioner().partition(small_scale_free_graph, 2)
        estimate = estimate_critical_path(small_scale_free_graph, partitioning)
        assert critical_path_accuracy(estimate, []) == 0.0


class TestBounds:
    def test_pagerank_upper_bound_values(self):
        # log10(0.001) / log10(0.85) = 42.5 -> 43 (the paper quotes 42).
        assert pagerank_iteration_upper_bound(0.001, 0.85) in (42, 43)
        assert pagerank_iteration_upper_bound(0.1, 0.85) >= 14

    def test_bound_monotone_in_epsilon(self):
        assert pagerank_iteration_upper_bound(0.001) > pagerank_iteration_upper_bound(0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            pagerank_iteration_upper_bound(0.0)
        with pytest.raises(ConfigurationError):
            pagerank_iteration_upper_bound(0.1, damping=1.0)
        with pytest.raises(ConfigurationError):
            pagerank_dag_bound(-1)
        with pytest.raises(ConfigurationError):
            connected_components_upper_bound(-2)
        with pytest.raises(ConfigurationError):
            bound_misprediction_factor(10, 0)

    def test_dag_and_cc_bounds(self):
        assert pagerank_dag_bound(5) == 6
        assert connected_components_upper_bound(5) == 6

    def test_misprediction_factor(self):
        assert bound_misprediction_factor(42, 21) == pytest.approx(2.0)


class TestPredictionEvaluation:
    def test_signed_errors(self):
        evaluation = PredictionEvaluation(
            algorithm="pagerank", dataset="wiki", sampling_ratio=0.1,
            predicted_iterations=12, actual_iterations=10,
            predicted_runtime=90.0, actual_runtime=100.0,
            predicted_remote_bytes=1100.0, actual_remote_bytes=1000.0,
        )
        assert evaluation.iterations_error == pytest.approx(0.2)
        assert evaluation.runtime_error == pytest.approx(-0.1)
        assert evaluation.remote_bytes_error == pytest.approx(0.1)
        row = evaluation.as_dict()
        assert row["iters_err"] == pytest.approx(0.2)
        assert row["rem_bytes_err"] == pytest.approx(0.1)

    def test_remote_bytes_optional(self):
        evaluation = PredictionEvaluation(
            algorithm="pagerank", dataset="wiki", sampling_ratio=0.1,
            predicted_iterations=10, actual_iterations=10,
            predicted_runtime=1.0, actual_runtime=1.0,
        )
        assert evaluation.remote_bytes_error is None
        assert "rem_bytes_err" not in evaluation.as_dict()
