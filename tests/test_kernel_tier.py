"""Tier selection, fallback and bit-identity tests for the kernel package.

The dispatch rules (``repro.bsp.kernels``) are pinned directly: explicit
tier names, the ``REPRO_KERNEL_TIER`` environment override, the silent
numba -> numpy fallback, and the error paths.  Bit-identity of the compiled
loop twins against the NumPy reference is pinned *without* numba by
monkeypatching the import probe: the ``njit`` shim in
:mod:`repro.bsp.kernels.compiled` makes every twin an ordinary Python
function, so the exact loops that numba would compile run (slowly) under
plain CPython and their outputs are compared bit for bit -- including the
``-0.0`` vs ``0.0`` representative choice and order-sensitive IEEE folds,
the cases an unstable sort or re-associated accumulation would break.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.bsp.kernels as kernels_mod
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.kernels import (
    KERNEL_TIER_ENV,
    available_kernel_tiers,
    compiled,
    get_kernels,
    numba_available,
    reference,
    resolve_kernel_tier,
)
from repro.bsp.ragged import Ragged
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.exceptions import BSPError
from repro.graph import generators
from repro.utils.rng import make_rng


class TestTierSelection:
    def test_numpy_always_resolves_to_numpy(self):
        assert resolve_kernel_tier("numpy") == "numpy"

    def test_numba_and_auto_follow_availability(self):
        expected = "numba" if numba_available() else "numpy"
        assert resolve_kernel_tier("numba") == expected
        assert resolve_kernel_tier("auto") == expected

    def test_available_tiers_match_probe(self):
        tiers = available_kernel_tiers()
        assert tiers[0] == "numpy"
        assert ("numba" in tiers) == numba_available()

    def test_invalid_tier_raises(self):
        with pytest.raises(BSPError, match="unknown kernel tier"):
            resolve_kernel_tier("fortran")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV, "numpy")
        assert resolve_kernel_tier(None) == "numpy"
        monkeypatch.setenv(KERNEL_TIER_ENV, "numba")
        assert resolve_kernel_tier(None) == ("numba" if numba_available() else "numpy")
        monkeypatch.setenv(KERNEL_TIER_ENV, "fortran")
        with pytest.raises(BSPError, match="unknown kernel tier"):
            resolve_kernel_tier(None)

    def test_explicit_request_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_TIER_ENV, "fortran")  # would raise if read
        assert resolve_kernel_tier("numpy") == "numpy"

    def test_missing_numba_falls_back_silently(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_NUMBA_PROBE", False)
        assert resolve_kernel_tier("numba") == "numpy"
        assert resolve_kernel_tier("auto") == "numpy"
        assert available_kernel_tiers() == ("numpy",)
        kernels = get_kernels("numba")
        assert kernels.tier == "numpy"
        assert kernels.segment_left_fold_sums is reference.segment_left_fold_sums

    def test_threads_below_one_raises(self):
        with pytest.raises(BSPError, match="threads"):
            get_kernels("numpy", threads=0)

    def test_kernel_set_is_cached_per_tier_and_threads(self):
        assert get_kernels("numpy") is get_kernels("numpy", threads=1)
        assert get_kernels("numpy").threads == 1

    def test_warm_up_runs_every_kernel(self):
        # Smoke: warm_up must execute on any tier without raising.
        for tier in available_kernel_tiers():
            get_kernels(tier).warm_up()


@pytest.fixture
def loop_twins(monkeypatch):
    """The compiled tier's kernel table with the loop twins guaranteed to be
    plain-Python callable (probe forced; a no-op where numba is installed)."""
    monkeypatch.setattr(kernels_mod, "_NUMBA_PROBE", True)
    return compiled.make_kernel_set(threads=1)


class TestCompiledTwinBitIdentity:
    """Every compiled twin against its reference, bit for bit."""

    def test_fold_sums(self, loop_twins):
        rng = make_rng(11)
        for _ in range(15):
            lengths = rng.integers(0, 40, size=rng.integers(1, 30)).astype(np.int64)
            data = rng.random(int(lengths.sum())) * 3.0
            expected = reference.segment_left_fold_sums(data, lengths)
            got = loop_twins["segment_left_fold_sums"](data, lengths)
            assert np.array_equal(
                expected.view(np.uint64), got.view(np.uint64)
            )

    def test_fold_sums_order_sensitive_case(self, loop_twins):
        # (1e16 + 1.0) - 1e16 == 0.0 but 1e16 + (1.0 - 1e16) rounds away:
        # any re-association shows up here.
        data = np.array([1e16, 1.0, -1e16])
        lengths = np.array([3], dtype=np.int64)
        expected = reference.segment_left_fold_sums(data, lengths)
        got = loop_twins["segment_left_fold_sums"](data, lengths)
        assert expected[0] == got[0] == ((0.0 + 1e16) + 1.0) + -1e16

    def test_masked_fold(self, loop_twins):
        rng = make_rng(12)
        for _ in range(15):
            num_segments = int(rng.integers(1, 10))
            seg_lengths = rng.integers(0, 20, size=num_segments)
            seg_ids = np.repeat(np.arange(num_segments), seg_lengths)
            values = rng.random(len(seg_ids)) * 5.0
            mask = rng.random(len(seg_ids)) < 0.6
            expected = reference.masked_segment_left_fold(
                values, mask, seg_ids, num_segments
            )
            got = loop_twins["masked_segment_left_fold"](
                values, mask, seg_ids, num_segments
            )
            assert np.array_equal(expected.view(np.uint64), got.view(np.uint64))

    def test_unique_topk(self, loop_twins):
        rng = make_rng(13)
        for _ in range(15):
            num_segments = int(rng.integers(1, 8))
            seg_lengths = rng.integers(0, 12, size=num_segments)
            seg_ids = np.repeat(np.arange(num_segments), seg_lengths)
            data = rng.integers(0, 10, size=len(seg_ids)).astype(np.float64)
            k = int(rng.integers(1, 5))
            ref_values, ref_lengths = reference.segment_unique_topk_desc(
                data, seg_ids, num_segments, k
            )
            got_values, got_lengths = loop_twins["segment_unique_topk_desc"](
                data, seg_ids, num_segments, k
            )
            assert np.array_equal(ref_lengths, got_lengths)
            assert np.array_equal(
                ref_values.view(np.uint64), got_values.view(np.uint64)
            )

    def test_unique_topk_signed_zero_representative(self, loop_twins):
        # -0.0 == 0.0, so dedup keeps ONE of them -- and it must be the same
        # one as the reference's stable lexsort (first in stream order).
        # The kept representative's sign bit is observable downstream.
        data = np.array([-0.0, 0.0, 1.0, 0.0, -0.0, 2.0])
        seg_ids = np.array([0, 0, 0, 1, 1, 1], dtype=np.int64)
        ref_values, ref_lengths = reference.segment_unique_topk_desc(
            data, seg_ids, 2, 3
        )
        got_values, got_lengths = loop_twins["segment_unique_topk_desc"](
            data, seg_ids, 2, 3
        )
        assert np.array_equal(ref_lengths, got_lengths)
        assert np.array_equal(ref_values.view(np.uint64), got_values.view(np.uint64))

    def test_unique_records(self, loop_twins):
        rng = make_rng(14)
        for _ in range(15):
            num_segments = int(rng.integers(1, 6))
            seg_lengths = rng.integers(0, 8, size=num_segments)
            seg_ids = np.repeat(np.arange(num_segments), seg_lengths)
            # Narrow value pool -> duplicate rows are common.
            records = rng.integers(0, 3, size=(len(seg_ids), 3)).astype(np.float64)
            ref_rows, ref_segs, ref_counts = reference.segment_unique_records(
                records, seg_ids, num_segments
            )
            got_rows, got_segs, got_counts = loop_twins["segment_unique_records"](
                records, seg_ids, num_segments
            )
            assert np.array_equal(ref_counts, got_counts)
            assert np.array_equal(ref_segs, got_segs)
            assert np.array_equal(
                ref_rows.view(np.uint64), got_rows.view(np.uint64)
            )

    def test_unique_records_signed_zero_representative(self, loop_twins):
        records = np.array([[0.0, 5.0], [-0.0, 5.0], [-0.0, 4.0], [0.0, 4.0]])
        seg_ids = np.array([0, 0, 1, 1], dtype=np.int64)
        ref_rows, _, ref_counts = reference.segment_unique_records(
            records, seg_ids, 2
        )
        got_rows, _, got_counts = loop_twins["segment_unique_records"](
            records, seg_ids, 2
        )
        assert np.array_equal(ref_counts, got_counts)
        assert np.array_equal(ref_rows.view(np.uint64), got_rows.view(np.uint64))

    def test_pack_rank_keys(self, loop_twins):
        rng = make_rng(15)
        for _ in range(10):
            m = int(rng.integers(1, 30))
            v_max = int(rng.integers(1, 9))
            bits = int(rng.integers(1, 7))
            per_key = max(1, 63 // bits)
            rank_plus = rng.integers(0, 2 ** bits, size=(m, v_max)).astype(np.int64)
            expected = reference.pack_rank_keys(rank_plus, bits, per_key)
            got = loop_twins["pack_rank_keys"](rank_plus, bits, per_key)
            assert len(expected) == len(got)
            for left, right in zip(expected, got):
                assert np.array_equal(left, right)

    def test_filter_range(self, loop_twins):
        rng = make_rng(16)
        for _ in range(10):
            dest = rng.integers(0, 50, size=rng.integers(0, 80)).astype(np.int64)
            lo = int(rng.integers(0, 25))
            hi = int(rng.integers(lo, 51))
            ref_dest, ref_idx = reference.filter_range(dest, lo, hi)
            got_dest, got_idx = loop_twins["filter_range"](dest, lo, hi)
            assert np.array_equal(ref_dest, got_dest)
            assert np.array_equal(ref_idx, got_idx)
            assert got_dest.dtype == dest.dtype

    def test_empty_inputs(self, loop_twins):
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        assert loop_twins["segment_left_fold_sums"](
            empty_f, np.zeros(3, dtype=np.int64)
        ).tolist() == [0.0, 0.0, 0.0]
        values, lengths = loop_twins["segment_unique_topk_desc"](empty_f, empty_i, 3, 2)
        assert len(values) == 0 and lengths.tolist() == [0, 0, 0]
        rows, segs, counts = loop_twins["segment_unique_records"](
            empty_f.reshape(0, 2), empty_i, 2
        )
        assert len(rows) == 0 and counts.tolist() == [0, 0]
        dest_f, idx = loop_twins["filter_range"](empty_i, 0, 5)
        assert len(dest_f) == 0 and len(idx) == 0


class TestHybridThreadSplit:
    """The threaded fold paths produce bit-identical output for any thread
    count: the cuts are segment-aligned so no accumulation spans threads."""

    def test_fold_sums_threaded_matches_sequential(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_NUMBA_PROBE", True)
        monkeypatch.setattr(compiled, "_MIN_PARALLEL_ELEMENTS", 1)
        rng = make_rng(21)
        lengths = rng.integers(0, 25, size=200).astype(np.int64)
        data = rng.random(int(lengths.sum())) * 3.0
        expected = reference.segment_left_fold_sums(data, lengths)
        for threads in (2, 3, 7):
            got = compiled._make_fold_sums(threads)(data, lengths)
            assert np.array_equal(expected.view(np.uint64), got.view(np.uint64))

    def test_masked_fold_threaded_matches_sequential(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_NUMBA_PROBE", True)
        monkeypatch.setattr(compiled, "_MIN_PARALLEL_ELEMENTS", 1)
        rng = make_rng(22)
        num_segments = 150
        seg_lengths = rng.integers(0, 20, size=num_segments)
        seg_ids = np.repeat(np.arange(num_segments), seg_lengths)
        values = rng.random(len(seg_ids)) * 5.0
        mask = rng.random(len(seg_ids)) < 0.5
        expected = reference.masked_segment_left_fold(
            values, mask, seg_ids, num_segments
        )
        for threads in (2, 3, 7):
            got = compiled._make_masked_fold(threads)(
                values, mask, seg_ids, num_segments
            )
            assert np.array_equal(expected.view(np.uint64), got.view(np.uint64))

    def test_segment_cuts_cover_and_are_monotone(self):
        ends = np.cumsum(np.array([3, 0, 5, 1, 2, 8], dtype=np.int64))
        cuts = compiled._segment_cuts(ends, 4)
        assert cuts[0] == 0 and cuts[-1] == len(ends)
        assert all(a <= b for a, b in zip(cuts, cuts[1:]))

    def test_element_cuts_align_to_segment_starts(self):
        seg_ids = np.repeat(np.arange(5), [4, 1, 6, 0, 9])
        cuts = compiled._element_cuts(seg_ids, 3)
        assert cuts[0] == 0 and cuts[-1] == len(seg_ids)
        for c in cuts[1:-1]:
            if 0 < c < len(seg_ids):
                assert seg_ids[c] != seg_ids[c - 1]


class TestEngineIntegration:
    def _engine(self):
        return BSPEngine(
            cluster=ClusterSpec(num_nodes=1, workers_per_node=4),
            cost_profile=DETERMINISTIC_PROFILE,
        )

    def test_run_result_records_tier_and_threads(self):
        from repro.algorithms.pagerank import PageRank

        graph = generators.erdos_renyi(30, 0.2, seed=2).freeze()
        result = self._engine().run(
            graph, PageRank(), None,
            EngineConfig(
                num_workers=4, max_supersteps=3, runtime_seed=1,
                kernel_tier="numpy", threads=2,
            ),
        )
        assert result.kernel_tier == "numpy"
        assert result.threads == 2
        assert result.summary()["kernel_tier"] == "numpy"

    def test_invalid_tier_fails_the_run(self):
        from repro.algorithms.pagerank import PageRank

        graph = generators.erdos_renyi(10, 0.2, seed=2).freeze()
        with pytest.raises(BSPError, match="unknown kernel tier"):
            self._engine().run(
                graph, PageRank(), None,
                EngineConfig(num_workers=2, max_supersteps=2, runtime_seed=1,
                             kernel_tier="fortran"),
            )

    def test_loop_twin_tier_run_is_bit_identical(self, monkeypatch):
        """A full inline run on the compiled dispatch (loop twins as plain
        Python when numba is absent) matches the numpy-tier run exactly."""
        from repro.algorithms.topk_ranking import TopKRanking

        monkeypatch.setattr(kernels_mod, "_NUMBA_PROBE", True)
        graph = generators.uniform_csr(120, 600, seed=9, name="kt-small")
        engine = self._engine()

        def run(tier):
            return engine.run(
                graph, TopKRanking(), None,
                EngineConfig(
                    num_workers=4, max_supersteps=8, runtime_seed=1,
                    collect_vertex_values=True, kernel_tier=tier,
                ),
            )

        baseline = run("numpy")
        twinned = run("numba")
        assert twinned.kernel_tier == "numba"
        assert baseline.vertex_values == twinned.vertex_values
        assert baseline.convergence_history == twinned.convergence_history
        assert baseline.num_iterations == twinned.num_iterations
        for left, right in zip(baseline.iterations, twinned.iterations):
            assert left.graph_feature_dict() == right.graph_feature_dict()


class TestRaggedReExports:
    def test_ragged_module_still_exports_the_reference_kernels(self):
        # Back-compat: the kernels moved to repro.bsp.kernels.reference but
        # the old repro.bsp.ragged names keep working (and stay zero-cost).
        from repro.bsp import ragged

        assert ragged.segment_left_fold_sums is reference.segment_left_fold_sums
        assert ragged.masked_segment_left_fold is reference.masked_segment_left_fold
        assert ragged.segment_unique_records is reference.segment_unique_records
        # The topk name wraps the reference in a Ragged for row access.
        result = ragged.segment_unique_topk_desc(
            np.array([2.0, 1.0, 3.0]), np.array([0, 0, 1], dtype=np.int64), 2, 2
        )
        assert isinstance(result, Ragged)
        assert result.to_tuples() == [(2.0, 1.0), (3.0,)]
