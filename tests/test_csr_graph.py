"""Unit tests of :class:`repro.graph.csr.CSRGraph` (the frozen graph core).

The differential engine tests cover behavioural equivalence under BSP runs;
here we pin the data-structure contract itself: protocol parity with
``DiGraph``, immutability, array constructors, id handling (including
non-integer ids) and the zero-copy derivations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.connected_components import ConnectedComponents
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.exceptions import GraphError
from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph


@pytest.fixture()
def sample_digraph() -> DiGraph:
    graph = DiGraph(name="sample")
    edges = [(0, 1, 2.0), (0, 2, 1.0), (1, 2, 0.5), (2, 0, 1.0), (2, 3, 3.0), (3, 3, 1.0)]
    for source, target, weight in edges:
        graph.add_edge(source, target, weight)
    graph.add_vertex(4)  # isolated vertex
    return graph


class TestFreezeProtocolParity:
    def test_flags(self, sample_digraph):
        frozen = sample_digraph.freeze()
        assert frozen.is_frozen and not sample_digraph.is_frozen
        assert frozen.freeze() is frozen

    def test_counts_and_orders(self, sample_digraph):
        frozen = sample_digraph.freeze()
        assert frozen.num_vertices == sample_digraph.num_vertices
        assert frozen.num_edges == sample_digraph.num_edges
        assert len(frozen) == len(sample_digraph)
        assert list(frozen.vertices()) == list(sample_digraph.vertices())
        assert list(frozen.edges()) == list(sample_digraph.edges())

    def test_adjacency_queries(self, sample_digraph):
        frozen = sample_digraph.freeze()
        for vertex in sample_digraph.vertices():
            assert frozen.successors(vertex) == sample_digraph.successors(vertex)
            assert frozen.out_edges(vertex) == sample_digraph.out_edges(vertex)
            assert frozen.out_degree(vertex) == sample_digraph.out_degree(vertex)
            assert frozen.in_degree(vertex) == sample_digraph.in_degree(vertex)
            assert frozen.degree(vertex) == sample_digraph.degree(vertex)
            for position in range(sample_digraph.out_degree(vertex)):
                assert frozen.successor_at(vertex, position) == (
                    sample_digraph.successor_at(vertex, position)
                )

    def test_membership_and_has_edge(self, sample_digraph):
        frozen = sample_digraph.freeze()
        assert 0 in frozen and 99 not in frozen
        assert frozen.has_vertex(4) and not frozen.has_vertex(99)
        assert frozen.has_edge(0, 1) and not frozen.has_edge(1, 0)
        assert not frozen.has_edge(99, 0) and not frozen.has_edge(0, 99)

    def test_degree_sequences(self, sample_digraph):
        frozen = sample_digraph.freeze()
        assert frozen.out_degree_sequence() == sample_digraph.out_degree_sequence()
        assert frozen.in_degree_sequence() == sample_digraph.in_degree_sequence()

    def test_successor_at_list_index_semantics(self, sample_digraph):
        frozen = sample_digraph.freeze()
        # Negative positions index from the end, like DiGraph's list access.
        assert frozen.successor_at(0, -1) == sample_digraph.successor_at(0, -1)
        # Out-of-range positions raise instead of reading a neighbouring row.
        with pytest.raises(IndexError):
            frozen.successor_at(0, sample_digraph.out_degree(0))
        with pytest.raises(IndexError):
            frozen.successor_at(4, 0)  # isolated vertex

    def test_missing_vertex_raises(self, sample_digraph):
        frozen = sample_digraph.freeze()
        with pytest.raises(GraphError):
            frozen.successors(99)
        with pytest.raises(GraphError):
            frozen.out_degree(99)


class TestImmutability:
    def test_add_vertex_raises(self, sample_digraph):
        frozen = sample_digraph.freeze()
        with pytest.raises(GraphError):
            frozen.add_vertex(100)

    def test_add_edge_raises(self, sample_digraph):
        frozen = sample_digraph.freeze()
        with pytest.raises(GraphError):
            frozen.add_edge(0, 1)


class TestDerivations:
    def test_subgraph_matches_digraph(self, sample_digraph):
        frozen = sample_digraph.freeze()
        keep = [2, 0, 3]
        expected = sample_digraph.subgraph(keep)
        actual = frozen.subgraph(keep)
        assert list(actual.vertices()) == list(expected.vertices())
        assert list(actual.edges()) == list(expected.edges())

    def test_subgraph_duplicate_vertices_match_digraph(self, sample_digraph):
        # DiGraph.subgraph adds edges once per *occurrence* of a vertex in the
        # input sequence; the CSR version replicates that exactly.
        frozen = sample_digraph.freeze()
        duplicated = [0, 1, 0, 2, 2]
        expected = sample_digraph.subgraph(duplicated)
        actual = frozen.subgraph(duplicated)
        assert list(actual.vertices()) == list(expected.vertices())
        assert list(actual.edges()) == list(expected.edges())

    def test_subgraph_skips_unknown_and_empty(self, sample_digraph):
        frozen = sample_digraph.freeze()
        sub = frozen.subgraph([0, 77])
        assert list(sub.vertices()) == [0]
        empty = frozen.subgraph([])
        assert empty.num_vertices == 0 and empty.num_edges == 0

    def test_as_undirected_matches_digraph(self, sample_digraph):
        frozen = sample_digraph.freeze()
        assert list(frozen.as_undirected().edges()) == list(
            sample_digraph.as_undirected().edges()
        )
        assert frozen.as_undirected().is_frozen

    def test_reverse_matches_digraph(self, sample_digraph):
        frozen = sample_digraph.freeze()
        assert list(frozen.reverse().edges()) == list(sample_digraph.reverse().edges())

    def test_copy_shares_arrays(self, sample_digraph):
        frozen = sample_digraph.freeze()
        duplicate = frozen.copy(name="dup")
        assert duplicate.name == "dup"
        assert duplicate.targets is frozen.targets
        assert list(duplicate.edges()) == list(frozen.edges())

    def test_relabel_to_integers(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c", 2.0)
        frozen = graph.freeze()
        relabelled, mapping = frozen.relabel_to_integers()
        assert mapping == {"a": 0, "b": 1, "c": 2}
        assert list(relabelled.edges()) == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_to_digraph_round_trip(self, sample_digraph):
        frozen = sample_digraph.freeze()
        thawed = frozen.to_digraph()
        assert list(thawed.vertices()) == list(sample_digraph.vertices())
        assert list(thawed.edges()) == list(sample_digraph.edges())
        assert not thawed.is_frozen


class TestArrayConstructors:
    def test_from_edge_arrays_groups_by_source_stably(self):
        graph = CSRGraph.from_edge_arrays(
            4,
            np.array([2, 0, 2, 1]),
            np.array([0, 1, 3, 2]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )
        assert graph.num_vertices == 4 and graph.num_edges == 4
        assert graph.out_edges(2) == [(0, 1.0), (3, 3.0)]
        assert graph.out_edges(0) == [(1, 2.0)]

    def test_from_edge_arrays_validates_bounds(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_arrays(2, np.array([0]), np.array([5]))
        with pytest.raises(GraphError):
            CSRGraph.from_edge_arrays(0, np.array([], dtype=int), np.array([], dtype=int))

    def test_from_edge_arrays_validates_weights_length(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_arrays(
                3, np.array([0, 1]), np.array([1, 2]), np.array([1.0, 2.0, 3.0])
            )
        with pytest.raises(GraphError):
            CSRGraph.from_edge_arrays(
                3, np.array([0, 1]), np.array([1, 2]), np.array([1.0])
            )

    def test_uniform_csr_generator(self):
        graph = generators.uniform_csr(500, 3000, seed=3)
        assert graph.is_frozen
        assert graph.num_vertices == 500
        assert graph.num_edges == 3000
        assert all(source != target for source, target, _ in graph.edges())


class TestNonIntegerIds:
    def test_string_ids_supported(self):
        graph = DiGraph()
        graph.add_edge("x", "y")
        graph.add_edge("y", "z")
        frozen = graph.freeze()
        assert not frozen.integer_ids
        assert frozen.successors("x") == ["y"]
        assert list(frozen.edges()) == list(graph.edges())

    def test_engine_falls_back_to_scalar_on_string_ids(self):
        # Connected components over string labels cannot vectorize; the run
        # must silently use the scalar path and agree with the DiGraph run.
        graph = DiGraph()
        for source, target in [("a", "b"), ("b", "a"), ("c", "d")]:
            graph.add_edge(source, target)
        engine = BSPEngine(
            cluster=ClusterSpec(num_nodes=1, workers_per_node=2),
            cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
        )
        config = EngineConfig(num_workers=2, collect_vertex_values=True, runtime_seed=1)
        scalar = engine.run(graph, ConnectedComponents(), None, config)
        frozen = engine.run(graph.freeze(), ConnectedComponents(), None, config)
        assert scalar.vertex_values == frozen.vertex_values
        assert scalar.num_iterations == frozen.num_iterations
