"""Unit tests for graph property analysis."""

import pytest

from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.properties import (
    DegreeStatistics,
    analyze,
    bfs_distances,
    build_in_adjacency,
    clustering_coefficient,
    degree_d_statistics,
    effective_diameter,
    is_scale_free,
    largest_wcc_fraction,
    weakly_connected_components,
)


@pytest.fixture()
def two_component_graph():
    graph = DiGraph(name="two-components")
    graph.add_edges([(0, 1), (1, 2), (2, 0)])
    graph.add_edges([(10, 11), (11, 12)])
    return graph


class TestBfsAndComponents:
    def test_bfs_distances_directed(self, tiny_graph):
        distances = bfs_distances(tiny_graph, 0, directed=True)
        assert distances[0] == 0
        assert distances[1] == 1
        assert distances[3] == 2

    def test_bfs_distances_undirected_reaches_more(self, two_component_graph):
        directed = bfs_distances(two_component_graph, 2, directed=True)
        undirected = bfs_distances(two_component_graph, 2, directed=False)
        assert len(undirected) >= len(directed)

    def test_build_in_adjacency(self, tiny_graph):
        in_adj = build_in_adjacency(tiny_graph)
        assert set(in_adj[2]) == {0, 1}

    def test_weakly_connected_components(self, two_component_graph):
        components = weakly_connected_components(two_component_graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [3, 3]

    def test_largest_wcc_fraction(self, two_component_graph):
        assert largest_wcc_fraction(two_component_graph) == pytest.approx(0.5)

    def test_largest_wcc_fraction_empty_graph(self):
        assert largest_wcc_fraction(DiGraph()) == 0.0


class TestDiameterAndClustering:
    def test_effective_diameter_of_chain(self):
        chain = generators.chain(20)
        diameter = effective_diameter(chain, num_sources=20, directed=False, seed=1)
        assert diameter > 5

    def test_effective_diameter_of_complete_graph_is_one(self):
        graph = generators.complete(10)
        assert effective_diameter(graph, num_sources=10, seed=1) == pytest.approx(1.0)

    def test_effective_diameter_empty_graph(self):
        assert effective_diameter(DiGraph()) == 0.0

    def test_clustering_coefficient_complete_graph(self):
        graph = generators.complete(8)
        assert clustering_coefficient(graph, seed=1) == pytest.approx(1.0)

    def test_clustering_coefficient_chain_is_zero(self):
        graph = generators.chain(20)
        assert clustering_coefficient(graph, seed=1) == pytest.approx(0.0)

    def test_clustering_coefficient_empty(self):
        assert clustering_coefficient(DiGraph()) == 0.0


class TestScaleFreeCheck:
    def test_preferential_attachment_is_scale_free(self):
        graph = generators.preferential_attachment(2000, out_degree=6, seed=2)
        assert is_scale_free(graph)

    def test_erdos_renyi_is_not_scale_free(self):
        graph = generators.erdos_renyi(1500, 0.005, seed=3)
        assert not is_scale_free(graph)

    def test_tiny_graph_is_not_scale_free(self, tiny_graph):
        assert not is_scale_free(tiny_graph)


class TestAnalyze:
    def test_degree_statistics_from_sequence(self):
        stats = DegreeStatistics.from_sequence([1, 2, 3, 4, 100])
        assert stats.maximum == 100
        assert stats.mean == pytest.approx(22.0)

    def test_degree_statistics_empty(self):
        stats = DegreeStatistics.from_sequence([])
        assert stats.maximum == 0

    def test_analyze_bundle(self, small_scale_free_graph):
        props = analyze(small_scale_free_graph, seed=1, diameter_sources=16)
        assert props.num_vertices == small_scale_free_graph.num_vertices
        assert props.num_edges == small_scale_free_graph.num_edges
        assert props.average_out_degree > 1
        assert 0 < props.largest_wcc_fraction <= 1.0
        assert "vertices" in props.as_dict()

    def test_degree_d_statistics_sample_of_itself(self, small_scale_free_graph):
        stats = degree_d_statistics(small_scale_free_graph, small_scale_free_graph)
        assert stats["out_degree"] == pytest.approx(0.0)
        assert stats["in_degree"] == pytest.approx(0.0)
