# Developer entry points.  All targets run from the repository root.
#
#   make verify     -- the tier-1 gate: full test + benchmark collection,
#                      stop at first failure (what CI runs).
#   make test-fast  -- unit tests only, slow-marked tests excluded; the
#                      quick inner-loop check while developing.
#   make test-full  -- unit tests including the slow differential runs.
#   make bench      -- regenerate every paper table/figure benchmark and the
#                      CSR fast-path speedup record under benchmarks/results/.
#   make bench-smoke -- tiny-graph sanity pass over the perf-guard benchmarks
#                      (no speedup floors, results not recorded); CI runs this
#                      on every PR so the guard code paths stay exercised.
#   make docs-check -- markdown link check over README.md + docs/ plus a
#                      compileall pass over src/; the CI docs job runs this.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test-fast test-full bench bench-smoke docs-check

verify:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest tests -q -m "not slow"

test-full:
	$(PYTHON) -m pytest tests -q

bench:
	$(PYTHON) -m pytest benchmarks -q -s

bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_csr_fastpath.py \
		benchmarks/test_bench_ragged_fastpath.py \
		benchmarks/test_bench_partition_layout.py \
		benchmarks/test_bench_semicluster_fastpath.py \
		benchmarks/test_bench_parallel_backend.py \
		benchmarks/test_bench_outofcore.py \
		benchmarks/test_bench_trace_overhead.py \
		benchmarks/test_bench_checkpoint_overhead.py \
		benchmarks/test_bench_kernel_tier.py \
		benchmarks/test_bench_service_cache.py \
		-q -s

docs-check:
	$(PYTHON) scripts/check_doc_links.py README.md docs/*.md
	$(PYTHON) -m compileall -q src
