# Developer entry points.  All targets run from the repository root.
#
#   make verify     -- the tier-1 gate: full test + benchmark collection,
#                      stop at first failure (what CI runs).
#   make test-fast  -- unit tests only, slow-marked tests excluded; the
#                      quick inner-loop check while developing.
#   make test-full  -- unit tests including the slow differential runs.
#   make bench      -- regenerate every paper table/figure benchmark and the
#                      CSR fast-path speedup record under benchmarks/results/.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test-fast test-full bench

verify:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest tests -q -m "not slow"

test-full:
	$(PYTHON) -m pytest tests -q

bench:
	$(PYTHON) -m pytest benchmarks -q -s
