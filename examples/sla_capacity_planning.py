#!/usr/bin/env python3
"""Feasibility analysis: can a workload of iterative algorithms meet its SLA?

The paper motivates runtime prediction with cluster resource allocation:
"Given a cluster deployment and a workload of iterative algorithms, is it
feasible to execute the workload on an input dataset while guaranteeing user
specified SLAs?"  This example answers exactly that question for a small
workload mix (PageRank and top-k ranking over several datasets) *without
executing the actual runs*: every runtime estimate comes from PREDIcT sample
runs, and the verdict compares the estimate against a per-job SLA.

Run with::

    python examples/sla_capacity_planning.py
"""

from __future__ import annotations

from repro import BSPEngine, EngineConfig, PageRank, PageRankConfig, Predictor, TopKRanking
from repro.algorithms.topk_ranking import TopKRankingConfig, config_with_ranks
from repro.graph.datasets import load_dataset
from repro.utils.tables import format_table

#: The workload: (job name, dataset, SLA in simulated seconds).
WORKLOAD = [
    ("pagerank", "wikipedia", 120.0),
    ("pagerank", "uk-2002", 200.0),
    ("pagerank", "livejournal", 60.0),
    ("topk-ranking", "wikipedia", 150.0),
]

SCALE = 0.5
SAMPLING_RATIO = 0.1


def pagerank_estimate(engine, engine_config, graph):
    """Predict PageRank's runtime on ``graph`` from a sample run."""
    config = PageRankConfig.for_tolerance_level(0.001, graph.num_vertices)
    predictor = Predictor(engine, PageRank(), engine_config=engine_config)
    return predictor.predict(graph, config, sampling_ratio=SAMPLING_RATIO)


def topk_estimate(engine, engine_config, graph):
    """Predict top-k ranking's runtime; its input ranks come from PageRank."""
    pr_config = PageRankConfig.for_tolerance_level(0.001, graph.num_vertices)
    pr_run = engine.run(
        graph, PageRank(), pr_config,
        EngineConfig(num_workers=engine_config.num_workers, collect_vertex_values=True),
    )
    config = config_with_ranks(TopKRankingConfig(k=5, tolerance=0.001), pr_run.vertex_values)
    predictor = Predictor(engine, TopKRanking(), engine_config=engine_config)
    return predictor.predict(graph, config, sampling_ratio=SAMPLING_RATIO)


def main() -> None:
    engine = BSPEngine()
    engine_config = EngineConfig(num_workers=8)

    rows = []
    total_estimated = 0.0
    for algorithm_name, dataset, sla_seconds in WORKLOAD:
        graph = load_dataset(dataset, scale=SCALE)
        if algorithm_name == "pagerank":
            prediction = pagerank_estimate(engine, engine_config, graph)
        else:
            prediction = topk_estimate(engine, engine_config, graph)
        estimate = prediction.predicted_superstep_runtime
        total_estimated += estimate
        verdict = "meets SLA" if estimate <= sla_seconds else "VIOLATES SLA"
        rows.append([
            algorithm_name,
            dataset,
            prediction.predicted_iterations,
            round(estimate, 1),
            sla_seconds,
            verdict,
        ])

    print(format_table(
        ["algorithm", "dataset", "pred. iterations", "pred. runtime (s)", "SLA (s)", "verdict"],
        rows,
        title="SLA feasibility analysis (no actual runs executed)",
    ))
    print(f"\ntotal estimated superstep time for the workload: {total_estimated:.1f}s")
    print("Estimates are produced from 10% sample runs only; the scheduler can "
          "use them to order jobs or to reject jobs whose SLA cannot be met.")


if __name__ == "__main__":
    main()
