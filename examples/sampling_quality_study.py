#!/usr/bin/env python3
"""Sampling-technique study: which sampler preserves the graph's key properties?

PREDIcT's accuracy hinges on the sample preserving connectivity, in/out-degree
proportionality and the effective diameter (§3.2.1 and §5.3 of the paper).
This example compares Biased Random Jump (the paper's default) against Random
Jump, MHRW, Random Walk and Forest Fire on one dataset:

* structural quality: degree D-statistics, effective diameter, connectivity;
* functional quality: the relative error of the PageRank iteration count
  predicted from a sample run using each technique.

Run with::

    python examples/sampling_quality_study.py
"""

from __future__ import annotations

from repro import BSPEngine, EngineConfig, PageRank, PageRankConfig
from repro.core.sample_run import SampleRunner
from repro.graph.datasets import load_dataset
from repro.sampling.quality import quality_report
from repro.sampling.registry import available_samplers, sampler_by_name
from repro.utils.stats import signed_relative_error
from repro.utils.tables import format_table

DATASET = "uk-2002"
SCALE = 0.4
RATIO = 0.1


def main() -> None:
    graph = load_dataset(DATASET, scale=SCALE)
    engine = BSPEngine()
    engine_config = EngineConfig(num_workers=8)
    algorithm = PageRank()
    config = PageRankConfig.for_tolerance_level(0.001, graph.num_vertices)

    actual = engine.run(graph, algorithm, config, engine_config)
    print(f"dataset: {graph.name}  vertices={graph.num_vertices}  edges={graph.num_edges}")
    print(f"actual PageRank iterations: {actual.num_iterations}\n")

    rows = []
    for name in available_samplers():
        sampler = sampler_by_name(name, seed=17)
        sample = sampler.sample(graph, RATIO)
        report = quality_report(graph, sample, seed=3)
        runner = SampleRunner(engine, algorithm, sampler=sampler_by_name(name, seed=17),
                              engine_config=engine_config)
        profile = runner.run(graph, config, RATIO)
        iteration_error = signed_relative_error(profile.num_iterations, actual.num_iterations)
        rows.append([
            name,
            round(report.out_degree_d_statistic, 3),
            round(report.in_degree_d_statistic, 3),
            round(report.diameter_sample, 1),
            round(report.wcc_fraction_sample, 2),
            profile.num_iterations,
            round(iteration_error, 3),
        ])

    headers = [
        "sampler", "D(out-degree)", "D(in-degree)", "sample diameter",
        "sample WCC fraction", "sample-run iterations", "iteration error",
    ]
    print(format_table(headers, rows, title=f"Sampling techniques on {DATASET} (ratio={RATIO})"))
    print(f"\noriginal effective diameter: {round(quality_report(graph, sampler_by_name('BRJ', seed=17).sample(graph, RATIO), seed=3).diameter_original, 1)}")
    print("Lower D-statistics and an iteration error close to zero indicate a "
          "sample that PREDIcT can rely on; the paper's default (BRJ) should be "
          "at or near the top of this table.")


if __name__ == "__main__":
    main()
