#!/usr/bin/env python3
"""Kill a worker process mid-run and recover bit-identically.

The fault-tolerance walkthrough (docs/RESILIENCE.md):

1. run PageRank on the process backend, undisturbed -- the reference,
2. run it again with superstep checkpointing on and a fault injected:
   worker process 1 is SIGKILLed at superstep 2,
3. watch the engine classify the dead barrier, respawn the worker, rewind
   to the last checkpoint and replay,
4. compare the recovered run to the reference field by field -- identical
   iteration counts, convergence history and vertex values.

Run with::

    python examples/demonstrate_recovery.py

The same switches exist on the CLI::

    repro-experiments run --algorithm pagerank --backend process \\
        --checkpoint-every 2 --inject-fault kill:1:2 --trace trace.json
"""

from __future__ import annotations

import tempfile

from repro import BSPEngine, EngineConfig, PageRank, PageRankConfig
from repro.bsp.resilience import FaultPlan
from repro.graph import generators
from repro.obs.tracer import Tracer
from repro.utils.tables import format_table

PROCESSES = 2


def run_pagerank(engine, graph, **overrides):
    config = PageRankConfig(tolerance=1e-5)
    engine_config = EngineConfig(
        num_workers=8,
        max_supersteps=60,
        runtime_seed=7,
        collect_vertex_values=True,
        backend="process",
        processes=PROCESSES,
        **overrides,
    )
    return engine.run(graph, PageRank(), config, engine_config)


def main() -> None:
    graph = generators.preferential_attachment(2000, out_degree=8, seed=11).freeze()
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    with BSPEngine() as engine, tempfile.TemporaryDirectory() as checkpoint_dir:
        # ---------------------------------------------------------- reference
        reference = run_pagerank(engine, graph)
        print(
            f"\nundisturbed run: {reference.num_iterations} supersteps, "
            f"converged={reference.converged}"
        )

        # ------------------------------------------------- fault + recovery
        # ``kill:1:2``: SIGKILL worker process 1 when it reaches superstep 2.
        # The engine snapshots engine+plane state every 2 supersteps; the
        # crash is detected at the barrier, the dead slot respawned, and the
        # run rewound to the last checkpoint and replayed.
        tracer = Tracer()
        recovered = run_pagerank(
            engine, graph,
            checkpoint_every=2,
            checkpoint_dir=checkpoint_dir,
            fault_plan=FaultPlan.parse(["kill:1:2"]),
            trace=tracer,
        )

        print("\nrecovery log:")
        for key, value in recovered.summary()["recovery"].items():
            print(f"  {key}: {value}")

        spans = [s for s in tracer.spans if s.name.startswith("recovery.")]
        rows = [
            [span.name, ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))]
            for span in spans
            if span.name != "recovery.checkpoint"
        ]
        rows.append([
            "recovery.checkpoint",
            f"x{sum(1 for s in spans if s.name == 'recovery.checkpoint')}",
        ])
        print()
        print(format_table(["span", "attributes"], rows, title="Recovery trace spans"))

    # ------------------------------------------------------------- compare
    checks = [
        ("supersteps", reference.num_iterations, recovered.num_iterations),
        ("converged", reference.converged, recovered.converged),
        (
            "convergence history",
            [round(x, 12) for x in reference.convergence_history[-3:]],
            [round(x, 12) for x in recovered.convergence_history[-3:]],
        ),
        (
            "vertex values equal",
            "--",
            reference.vertex_values == recovered.vertex_values,
        ),
    ]
    rows = [[name, str(a), str(b)] for name, a, b in checks]
    print()
    print(format_table(
        ["quantity", "undisturbed", "recovered"], rows,
        title="Recovered run vs reference",
    ))

    identical = (
        reference.num_iterations == recovered.num_iterations
        and reference.convergence_history == recovered.convergence_history
        and reference.vertex_values == recovered.vertex_values
    )
    print(f"\nbit-identical after recovery: {identical}")
    if not identical:
        raise SystemExit("recovered run diverged from the reference")


if __name__ == "__main__":
    main()
