#!/usr/bin/env python3
"""Two-stage pipeline with historical runs: PageRank output feeds top-k ranking.

The paper's §4.3 use case: top-k ranking runs on the *output* of PageRank, has
widely varying per-iteration runtimes (the number of vertices still updating
their rank lists shrinks non-monotonically) and benefits from historical runs
when training the cost model (Figure 8b).  This example:

1. runs PageRank on two datasets and keeps the rank vectors,
2. archives the actual top-k run of the *first* dataset in a history store,
3. predicts the top-k runtime on the *second* dataset, training the cost model
   on sample runs plus the history of the first dataset,
4. compares against the actual run of the second dataset.

Run with::

    python examples/topk_pipeline_with_history.py
"""

from __future__ import annotations

from repro import BSPEngine, EngineConfig, HistoryStore, PageRank, PageRankConfig, Predictor, TopKRanking
from repro.algorithms.topk_ranking import TopKRankingConfig, config_with_ranks
from repro.graph.datasets import load_dataset
from repro.utils.stats import signed_relative_error

SCALE = 0.4
HISTORY_DATASET = "wikipedia"
TARGET_DATASET = "uk-2002"


def pagerank_ranks(engine, graph):
    """Run PageRank and return its rank vector (the top-k input)."""
    config = PageRankConfig.for_tolerance_level(0.001, graph.num_vertices)
    result = engine.run(
        graph, PageRank(), config, EngineConfig(num_workers=8, collect_vertex_values=True)
    )
    return result.vertex_values


def main() -> None:
    engine = BSPEngine()
    engine_config = EngineConfig(num_workers=8)
    topk = TopKRanking()
    base_config = TopKRankingConfig(k=5, tolerance=0.001)

    # Stage 1: PageRank on both datasets.
    history_graph = load_dataset(HISTORY_DATASET, scale=SCALE)
    target_graph = load_dataset(TARGET_DATASET, scale=SCALE)
    history_config = config_with_ranks(base_config, pagerank_ranks(engine, history_graph))
    target_config = config_with_ranks(base_config, pagerank_ranks(engine, target_graph))

    # Stage 2: archive the actual top-k run of the history dataset.
    history = HistoryStore()
    history_run = engine.run(history_graph, topk, history_config, engine_config)
    history.record(history_run, dataset=HISTORY_DATASET)
    print(f"archived history: top-k on {HISTORY_DATASET} "
          f"({history_run.num_iterations} iterations, {history_run.superstep_runtime:.1f}s)")

    # Stage 3: predict on the target dataset, with and without the history.
    actual = engine.run(target_graph, topk, target_config, engine_config)
    for label, store in (("sample runs only", None), ("sample runs + history", history)):
        predictor = Predictor(engine, TopKRanking(), history=store, engine_config=engine_config)
        prediction = predictor.predict(
            target_graph, target_config, sampling_ratio=0.1, dataset_name=TARGET_DATASET
        )
        error = signed_relative_error(
            prediction.predicted_superstep_runtime, actual.superstep_runtime
        )
        print(f"\ntraining with {label}:")
        print(f"  predicted iterations : {prediction.predicted_iterations} "
              f"(actual {actual.num_iterations})")
        print(f"  predicted runtime    : {prediction.predicted_superstep_runtime:.1f}s "
              f"(actual {actual.superstep_runtime:.1f}s, signed error {error:+.2f})")
        print(f"  cost model R^2       : {prediction.cost_model.r_squared:.3f}")
        print(f"  selected features    : {prediction.cost_model.selected_features}")


if __name__ == "__main__":
    main()
