#!/usr/bin/env python3
"""Quickstart: predict the runtime of PageRank before running it.

This is the smallest end-to-end use of the library:

1. load a stand-in dataset (a scale-free web graph),
2. build a PREDIcT predictor for PageRank on the simulated cluster,
3. predict the number of iterations and the superstep runtime from a 10%
   sample run,
4. execute the actual run and compare.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BSPEngine, EngineConfig, PageRank, PageRankConfig, Predictor
from repro.algorithms import registry
from repro.graph.datasets import load_dataset
from repro.utils.stats import signed_relative_error
from repro.utils.tables import format_table

#: Human-readable label per batch payload kind (docs/BATCH_PLANES.md).
PLANE_LABELS = {
    "scalar": "scalar (sum/min reduced)",
    "rows": "rows (fixed-width, ufunc-reduced)",
    "ragged": "ragged (variable-length numeric)",
    "object": "object (numeric records / Python fold)",
}


def print_batch_plane_coverage() -> None:
    """Per-algorithm batch-plane coverage, straight from the registry.

    ``registry.supports_batch(name)`` answers the question for one
    algorithm; ``registry.batch_support()`` maps the whole registry.  On a
    frozen graph every covered algorithm runs its supersteps as array
    kernels (see docs/BATCH_PLANES.md for the payload contracts).
    """
    rows = []
    for name, supported in registry.batch_support().items():
        kind = getattr(registry.algorithm_by_name(name), "batch_payload", "scalar")
        rows.append([
            name,
            PLANE_LABELS.get(kind, kind),
            "yes" if supported else "no (scalar fallback)",
        ])
    print(format_table(["algorithm", "batch plane", "vectorized"], rows,
                       title="Batch-plane coverage"))


def main() -> None:
    print_batch_plane_coverage()
    print()
    # The 'wikipedia' stand-in is a scale-free web graph; scale=0.5 keeps this
    # example fast (a couple of seconds) while remaining non-trivial.
    graph = load_dataset("wikipedia", scale=0.5)
    print(f"dataset: {graph.name}  vertices={graph.num_vertices}  edges={graph.num_edges}")

    # The context manager closes the engine's cached process pools on exit
    # (a no-op for inline runs, required hygiene once backend="process").
    with BSPEngine() as engine:
        engine_config = EngineConfig(num_workers=8)
        algorithm = PageRank()
        # The paper's convergence setting: tau = epsilon / N with epsilon = 0.001.
        config = PageRankConfig.for_tolerance_level(0.001, graph.num_vertices)

        # ------------------------------------------------------------ predict
        predictor = Predictor(engine, algorithm, engine_config=engine_config)
        prediction = predictor.predict(graph, config, sampling_ratio=0.1)

        print("\nPREDIcT prediction (from a 10% sample run):")
        for key, value in prediction.summary().items():
            print(f"  {key}: {value}")

        # -------------------------------------------------------------- actual
        actual = engine.run(graph, algorithm, config, engine_config)

    rows = [
        ["iterations", prediction.predicted_iterations, actual.num_iterations,
         round(signed_relative_error(prediction.predicted_iterations, actual.num_iterations), 3)],
        ["superstep runtime (s)", round(prediction.predicted_superstep_runtime, 1),
         round(actual.superstep_runtime, 1),
         round(signed_relative_error(prediction.predicted_superstep_runtime,
                                     actual.superstep_runtime), 3)],
        ["remote message bytes", int(prediction.predicted_total_remote_bytes()),
         actual.total_remote_message_bytes(),
         round(signed_relative_error(prediction.predicted_total_remote_bytes(),
                                     float(actual.total_remote_message_bytes())), 3)],
    ]
    print()
    print(format_table(["quantity", "predicted", "actual", "signed error"], rows,
                       title="Prediction vs actual run"))
    print("\ncost model:", prediction.cost_model.describe())


if __name__ == "__main__":
    main()
