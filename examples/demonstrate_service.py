#!/usr/bin/env python3
"""Prediction-as-a-service: daemon, cache, single-flight, live.

The service walkthrough (docs/SERVICE.md):

1. start a prediction daemon on a unix socket, executing sample runs on
   the shared-memory **process backend** with tracing on,
2. ask it a cold question -- the full PREDIcT pipeline runs (sample the
   graph, sweep the training ratios, fit the cost model, extrapolate),
3. ask the identical question again -- the answer comes back warm from the
   prediction cache, **bit-identical** to the cold one, in O(lookup),
4. fire the same new question from several threads at once -- single-flight
   dedup computes it exactly once; the duplicates coalesce onto the
   winner's answer,
5. ask an *overlapping* question (a different prediction ratio) -- the
   per-ratio profile cache reuses every training sample run already done,
6. shut down cleanly and print the daemon's trace summary: spans plus the
   service and cache counters.

Run with::

    python examples/demonstrate_service.py

The same workflow over the installed CLI::

    repro-predict serve --socket /tmp/predict.sock --scale 0.4 --trace &
    repro-predict ask livejournal pagerank --socket /tmp/predict.sock
    repro-predict shutdown --socket /tmp/predict.sock
"""

from __future__ import annotations

import concurrent.futures
import tempfile
import threading
import time
from pathlib import Path

from repro.obs.export import summary_table
from repro.obs.tracer import Tracer
from repro.service.client import PredictionClient
from repro.service.daemon import PredictionDaemon, PredictionService

SCALE = 0.1
WORKERS = 4
SEED = 42


def show(tag: str, result: dict, elapsed: float) -> None:
    print(
        f"  {tag:<6} cache={result['cache']:<9} "
        f"iterations={result['predicted_iterations']:<3} "
        f"runtime={result['predicted_superstep_runtime']:.2f}s "
        f"R^2={result['r_squared']:.4f}  ({elapsed * 1000:.1f} ms)"
    )


def main() -> None:
    tracer = Tracer()
    socket_path = str(Path(tempfile.mkdtemp()) / "predict.sock")
    service = PredictionService(
        dataset_scale=SCALE,
        num_workers=WORKERS,
        seed=SEED,
        backend="process",
        processes=2,
        tracer=tracer,
    )
    daemon = PredictionDaemon(service, socket_path=socket_path, max_workers=4)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()

    client = PredictionClient(socket_path)
    client.wait_until_ready(timeout=30.0)
    print(f"daemon ready on {socket_path} (backend=process, scale={SCALE})")

    # ------------------------------------------------------------ cold / warm
    question = dict(dataset="livejournal", algorithm="pagerank", sampling_ratio=0.1)
    print("\npagerank on livejournal, ratio 0.1:")
    start = time.perf_counter()
    cold = client.predict(**question)
    show("cold", cold, time.perf_counter() - start)

    start = time.perf_counter()
    warm = client.predict(**question)
    show("warm", warm, time.perf_counter() - start)

    identical = {k: v for k, v in cold.items() if k != "cache"} == {
        k: v for k, v in warm.items() if k != "cache"
    }
    print(f"  warm answer bit-identical to cold: {identical}")
    assert identical, "cache must replay the exact cold answer"

    # ---------------------------------------------------------- single-flight
    print("\n6 concurrent clients, one new question (wikipedia):")

    def ask() -> str:
        c = PredictionClient(socket_path)
        try:
            return c.predict(dataset="wikipedia", algorithm="pagerank")["cache"]
        finally:
            c.close()

    with concurrent.futures.ThreadPoolExecutor(6) as pool:
        kinds = sorted(f.result() for f in [pool.submit(ask) for _ in range(6)])
    counters = service.counters()
    print(f"  response kinds : {kinds}")
    print(f"  computed       : {counters['service.predict.computed'] - 1} "
          "(for this question -- exactly one fan-out)")
    print(f"  coalesced      : {counters.get('service.singleflight.coalesced', 0)}")
    assert kinds.count("miss") == 1, "single-flight must compute exactly once"

    # --------------------------------------------------------- partial overlap
    print("\noverlapping sweep (livejournal, ratio 0.15 -- a training ratio):")
    before = service.profile_cache.stats()
    start = time.perf_counter()
    overlap = client.predict(dataset="livejournal", algorithm="pagerank",
                             sampling_ratio=0.15)
    show("miss*", overlap, time.perf_counter() - start)
    after = service.profile_cache.stats()
    print(f"  profile cells reused: {after['hits'] - before['hits']}, "
          f"newly executed: {after['puts'] - before['puts']} "
          "(the sweep was already cached cell by cell)")

    # ------------------------------------------------------------------ stats
    stats = client.stats()
    print("\ndaemon stats:")
    for name in sorted(stats["counters"]):
        print(f"  {name:<36} {stats['counters'][name]}")

    # --------------------------------------------------------------- shutdown
    print("\nshutting down:", client.shutdown())
    client.close()
    thread.join(timeout=60)
    print("\ntrace summary (spans + service/cache counters):\n")
    print(summary_table(tracer))


if __name__ == "__main__":
    main()
